//! The [`Store`] handle: thread-safe, integrity-checked object I/O over
//! the on-disk layout described in the [crate docs](crate).
//!
//! # Locking model
//!
//! | operation | topology lock | object lock |
//! |---|---|---|
//! | `put_object` | read | write |
//! | `read_object` / `stat` | read | read |
//! | `kill_node` / `repair_all` | **write** | — (excluded via topology) |
//!
//! The topology lock serialises cluster-shape mutations (killing and
//! repairing nodes) against all object traffic; the sharded
//! [`LockTable`](crate::lock_table::LockTable) lets reads of one object
//! run concurrently with each other and with traffic on other objects.
//! Lock acquisition recovers from poisoning (a panicked holder) instead
//! of propagating the panic, so one crashed worker cannot wedge the
//! daemon.
//!
//! Acquisition order is always topology → object (`cargo xtask lint`
//! checks this statically as lock classes `store.topo` rank 30 →
//! `store.object` rank 40), and both classes intentionally cover file
//! I/O: these locks exist to serialise access to the on-disk shard and
//! manifest files themselves.
//!
//! # Integrity pipeline
//!
//! Every shard read is checked three ways before its bytes reach the
//! decoder: exact framed length, CRC-32 over the payload, and the
//! payload's Merkle leaf against the object manifest. A shard failing
//! any check is demoted to an erasure (and counted), so corruption is
//! repaired *around* exactly like a missing disk — it can never poison
//! a reconstruction silently.

use crate::crc::{crc32, CRC_BYTES};
use crate::hash::Digest;
use crate::lock_table::LockTable;
use crate::merkle;
use crate::meta::{read_optional, write_atomic, Manifest, ObjectMeta, StoreConfig, StoreState};
use crate::StoreError;
use apec_ec::{DecodeSession, EcError, EncodeSession, ErasureCode};
use approx_code::{tiered, ApproxCode};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Per-worker reusable codec state: a warm [`EncodeSession`] for puts
/// and a warm [`DecodeSession`] (plan cache + scratch arena) for
/// degraded reads. One per worker thread; never shared.
#[derive(Default)]
pub struct StoreSession {
    /// Encode-side arena.
    pub enc: EncodeSession,
    /// Decode-side plan cache and scratch.
    pub dec: DecodeSession,
}

impl StoreSession {
    /// Fresh session; buffers and plan caches warm up on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of [`Store::read_object`].
#[derive(Debug)]
pub struct ReadOutcome {
    /// The important byte stream (always byte-exact unless the object
    /// was previously approximated by an over-tolerance repair).
    pub important: Vec<u8>,
    /// The unimportant byte stream (may contain zero-filled holes when
    /// `approximate` is set).
    pub unimportant: Vec<u8>,
    /// Object metadata.
    pub meta: ObjectMeta,
    /// At least one shard had to be reconstructed (missing, masked, or
    /// failed an integrity check).
    pub degraded: bool,
    /// The returned bytes are not guaranteed byte-exact: either this
    /// read fell back to tiered (approximate) reconstruction, or a past
    /// repair already zero-filled part of the object.
    pub approximate: bool,
    /// Shards that existed on disk but failed length/CRC/Merkle checks
    /// during this read.
    pub integrity_failures: usize,
}

/// Outcome of a repair pass over the whole store.
#[derive(Debug, Default)]
pub struct RepairSummary {
    /// Shard files rewritten.
    pub shards_rebuilt: usize,
    /// Bytes that could not be rebuilt (zero-filled, left to the
    /// approximate-recovery layer).
    pub bytes_lost: usize,
    /// `true` if every important byte survived.
    pub important_intact: bool,
    /// Corrupt (not merely missing) shards detected and rebuilt.
    pub integrity_failures: usize,
}

/// Health of one shard file as observed by a scan — the same integrity
/// pipeline a read runs (framed length, CRC-32, Merkle leaf), but
/// without materialising or decoding anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Passed length, CRC and Merkle-leaf checks.
    Ok,
    /// File absent (node dead or never written).
    Missing,
    /// File present but failed an integrity check (bit-rot).
    Corrupt,
}

/// One stripe's shard healths, indexed by node.
#[derive(Debug, Clone)]
pub struct StripeScan {
    /// Stripe index within the object.
    pub stripe: usize,
    /// Per-node health, `shards.len() == total_nodes`.
    pub shards: Vec<ShardHealth>,
}

impl StripeScan {
    /// Nodes whose shard is unavailable (missing or corrupt) — the
    /// erasure pattern a read of this stripe would have to decode around.
    pub fn failed_nodes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(n, h)| (*h != ShardHealth::Ok).then_some(n))
            .collect()
    }
}

/// Outcome of [`Store::scan_object`]: a full shard-by-shard integrity
/// sweep of one object, suitable for rate-budgeted background scrubbing.
#[derive(Debug, Clone)]
pub struct ObjectScan {
    /// The scanned object.
    pub id: String,
    /// Per-stripe shard healths.
    pub stripes: Vec<StripeScan>,
    /// Bytes read and checksummed (framed shard files).
    pub bytes_scanned: u64,
    /// Shards present on disk but failing an integrity check.
    pub corrupt: usize,
    /// Shards absent from disk.
    pub missing: usize,
}

impl ObjectScan {
    /// `true` when every shard passed every check.
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.missing == 0
    }
}

/// One seeded bit flip applied by [`Store::inject_bitrot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitrotHit {
    /// Object whose shard was flipped.
    pub id: String,
    /// Stripe index.
    pub stripe: usize,
    /// Node index.
    pub node: usize,
    /// Byte offset within the framed shard file (CRC header included).
    pub byte: usize,
    /// Bit position flipped (0..8).
    pub bit: u8,
}

/// Outcome of [`Store::repair_object`]: an object-granular heal that
/// runs under the topology *read* lock, so it can proceed concurrently
/// with foreground traffic on other objects.
#[derive(Debug, Clone, Default)]
pub struct ObjectRepair {
    /// Shard files rewritten.
    pub shards_rebuilt: usize,
    /// Corrupt (not merely missing) shards detected during the repair.
    pub integrity_failures: usize,
    /// Bytes that could not be rebuilt (zero-filled by the approximate
    /// recovery layer).
    pub bytes_lost: usize,
    /// Shards on dead nodes that were left to the next `repair_all`.
    pub skipped_dead: usize,
    /// `false` if any stripe fell back to approximate recovery.
    pub fully_recovered: bool,
}

/// How a framed shard file read resolved.
enum ShardRead {
    /// Payload passed length, CRC and Merkle-leaf checks.
    Ok(Vec<u8>),
    /// File absent (node dead or never written).
    Missing,
    /// File present but failed an integrity check.
    Corrupt,
}

/// A handle to an on-disk store. `Sync`: share it behind an `Arc` and
/// call it from many threads.
pub struct Store {
    root: PathBuf,
    config: StoreConfig,
    code: ApproxCode,
    /// Cluster-shape lock; see the module docs for the matrix.
    topo: RwLock<()>,
    /// Fixed-width sharded per-object locks; O(1) memory however many
    /// ids the daemon ever serves.
    locks: LockTable,
}

/// Acquire a read guard, absorbing poisoning from a panicked holder
/// (the guarded data lives on disk; the in-memory token carries none).
fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Acquire a write guard, absorbing poisoning.
fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Store {
    /// Creates a new store directory.
    pub fn init(root: &Path, config: StoreConfig) -> Result<Store, StoreError> {
        let code = config.code()?;
        config.check_shard_len(&code)?;
        if root.join("config.json").exists() {
            return Err(StoreError::User(format!(
                "{} already contains a store",
                root.display()
            )));
        }
        fs::create_dir_all(root.join("objects"))?;
        for n in 0..code.total_nodes() {
            fs::create_dir_all(root.join("nodes").join(n.to_string()))?;
        }
        write_atomic(&root.join("config.json"), config.to_json().as_bytes())?;
        write_atomic(&root.join("state.json"), StoreState::default().to_json().as_bytes())?;
        Ok(Store {
            root: root.to_path_buf(),
            config,
            code,
            topo: RwLock::new(()),
            locks: LockTable::new(),
        })
    }

    /// Opens an existing store.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        let text = read_optional(&root.join("config.json"))?
            .ok_or_else(|| StoreError::Corrupt(format!("{}: missing config.json", root.display())))?;
        let config = StoreConfig::from_json(&text)?;
        let code = config.code()?;
        config.check_shard_len(&code)?;
        Ok(Store {
            root: root.to_path_buf(),
            config,
            code,
            topo: RwLock::new(()),
            locks: LockTable::new(),
        })
    }

    /// The store's code configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The store's instantiated code.
    pub fn code(&self) -> &ApproxCode {
        &self.code
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn state_path(&self) -> PathBuf {
        self.root.join("state.json")
    }

    fn shard_path(&self, node: usize, id: &str, stripe: usize) -> PathBuf {
        self.root
            .join("nodes")
            .join(node.to_string())
            .join(format!("{id}_{stripe}.shard"))
    }

    fn manifest_path(&self, id: &str) -> PathBuf {
        self.root.join("objects").join(format!("{id}.json"))
    }

    /// Reads the mutable state (dead-node set).
    pub fn state(&self) -> Result<StoreState, StoreError> {
        let text = read_optional(&self.state_path())?
            .ok_or_else(|| StoreError::Corrupt("missing state.json".to_string()))?;
        StoreState::from_json(&text)
    }

    fn write_state(&self, state: &StoreState) -> Result<(), StoreError> {
        write_atomic(&self.state_path(), state.to_json().as_bytes())?;
        Ok(())
    }

    fn check_id(id: &str) -> Result<(), StoreError> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(StoreError::User(format!(
                "object id '{id}' must be non-empty [A-Za-z0-9_-]"
            )));
        }
        Ok(())
    }

    fn load_manifest(&self, id: &str) -> Result<Manifest, StoreError> {
        let text = read_optional(&self.manifest_path(id))?
            .ok_or_else(|| StoreError::User(format!("no such object '{id}'")))?;
        let manifest = Manifest::from_json(&text, &format!("manifest for '{id}'"))?;
        self.check_manifest_shape(&manifest)?;
        Ok(manifest)
    }

    /// Rejects manifests whose leaf matrix disagrees with the code shape
    /// (a manifest from a differently-configured store, or a truncated
    /// rewrite that still parsed).
    fn check_manifest_shape(&self, manifest: &Manifest) -> Result<(), StoreError> {
        let total = self.code.total_nodes();
        if manifest.leaves.iter().any(|row| row.len() != total) {
            return Err(StoreError::Corrupt(format!(
                "manifest for '{}' has wrong leaf width (expected {total} nodes)",
                manifest.meta.id
            )));
        }
        Ok(())
    }

    /// Writes one CRC-framed shard file.
    fn write_shard(
        &self,
        node: usize,
        id: &str,
        stripe: usize,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let mut framed = Vec::with_capacity(CRC_BYTES + payload.len());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        fs::write(self.shard_path(node, id, stripe), &framed)?;
        Ok(())
    }

    /// Reads one framed shard file and runs the full integrity pipeline
    /// against the manifest leaf.
    fn read_shard_checked(
        &self,
        node: usize,
        id: &str,
        stripe: usize,
        expected_leaf: &Digest,
    ) -> Result<ShardRead, StoreError> {
        let mut framed = match fs::read(self.shard_path(node, id, stripe)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ShardRead::Missing),
            Err(e) => return Err(StoreError::Io(e)),
        };
        if framed.len() != CRC_BYTES + self.config.shard_len {
            return Ok(ShardRead::Corrupt);
        }
        let payload = framed.split_off(CRC_BYTES);
        let mut stored = [0u8; CRC_BYTES];
        stored.copy_from_slice(&framed);
        if u32::from_le_bytes(stored) != crc32(&payload) {
            return Ok(ShardRead::Corrupt);
        }
        if merkle::leaf(&payload) != *expected_leaf {
            return Ok(ShardRead::Corrupt);
        }
        Ok(ShardRead::Ok(payload))
    }

    /// Stores a two-tier object (important + unimportant byte streams).
    ///
    /// Shard files are written first; the manifest commits the object
    /// last and atomically, so a crash mid-put leaves no visible object
    /// (orphan shard files are simply overwritten by a retried put).
    pub fn put_object(
        &self,
        session: &mut StoreSession,
        id: &str,
        important: &[u8],
        unimportant: &[u8],
    ) -> Result<ObjectMeta, StoreError> {
        Self::check_id(id)?;
        let _topo = read_guard(&self.topo);
        let _obj = self.locks.write_lock(id);
        if self.manifest_path(id).exists() {
            return Err(StoreError::User(format!("object '{id}' already exists")));
        }
        let dead = self.state()?.dead_nodes;
        if !dead.is_empty() {
            return Err(StoreError::User(format!(
                "cannot write while nodes {dead:?} are dead; repair first"
            )));
        }
        let packed = tiered::pack(&self.code, important, unimportant, self.config.shard_len)?;
        let mut leaves: Vec<Vec<Digest>> = Vec::with_capacity(packed.stripes.len());
        let mut refs: Vec<&[u8]> = Vec::with_capacity(self.code.data_nodes());
        for (s, rows) in packed.stripes.iter().enumerate() {
            refs.clear();
            refs.extend(rows.iter().map(|b| b.as_slice()));
            let parity = session.enc.encode(&self.code, &refs)?;
            let mut stripe_leaves = Vec::with_capacity(self.code.total_nodes());
            for (node, payload) in refs
                .iter()
                .copied()
                .chain(parity.iter().map(|p| p.as_slice()))
                .enumerate()
            {
                self.write_shard(node, id, s, payload)?;
                stripe_leaves.push(merkle::leaf(payload));
            }
            leaves.push(stripe_leaves);
        }
        let meta = ObjectMeta {
            id: id.to_string(),
            stripes: packed.stripes.len(),
            important_len: important.len(),
            unimportant_len: unimportant.len(),
            approximated: false,
        };
        let manifest = Manifest::build(meta.clone(), leaves);
        write_atomic(&self.manifest_path(id), manifest.to_json().as_bytes())?;
        Ok(meta)
    }

    /// Object metadata (from the manifest, Merkle-verified).
    pub fn stat(&self, id: &str) -> Result<ObjectMeta, StoreError> {
        let _topo = read_guard(&self.topo);
        let _obj = self.locks.read_lock(id);
        Ok(self.load_manifest(id)?.meta)
    }

    /// Lists stored objects.
    pub fn list(&self) -> Result<Vec<ObjectMeta>, StoreError> {
        let _topo = read_guard(&self.topo);
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("objects"))? {
            let path = entry?.path();
            let text = fs::read_to_string(&path)?;
            let what = format!("manifest {}", path.display());
            out.push(Manifest::from_json(&text, &what)?.meta);
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Fetches an object's two streams, reconstructing around missing,
    /// masked and corrupt shards. `mask` lists nodes to treat as dead
    /// for this read (the serving daemon's degraded-get), on top of
    /// whatever is actually missing on disk. Stored files are untouched.
    pub fn read_object(
        &self,
        session: &mut StoreSession,
        id: &str,
        mask: &[usize],
    ) -> Result<ReadOutcome, StoreError> {
        let _topo = read_guard(&self.topo);
        let _obj = self.locks.read_lock(id);
        let manifest = self.load_manifest(id)?;
        let meta = manifest.meta.clone();
        let total = self.code.total_nodes();
        let data_nodes = self.code.data_nodes();
        let mut integrity_failures = 0usize;
        let mut degraded = false;
        let mut approximate = meta.approximated;
        let mut stripes: Vec<Vec<Vec<u8>>> = Vec::with_capacity(meta.stripes);

        for (s, leaf_row) in manifest.leaves.iter().enumerate() {
            let mut rows: Vec<Option<Vec<u8>>> = Vec::with_capacity(total);
            for (node, expected) in leaf_row.iter().enumerate() {
                if mask.contains(&node) {
                    rows.push(None);
                    continue;
                }
                match self.read_shard_checked(node, id, s, expected)? {
                    ShardRead::Ok(payload) => rows.push(Some(payload)),
                    ShardRead::Missing => rows.push(None),
                    ShardRead::Corrupt => {
                        integrity_failures += 1;
                        rows.push(None);
                    }
                }
            }
            let missing: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.is_none().then_some(i))
                .collect();
            if !missing.is_empty() {
                degraded = true;
                let wanted: Vec<usize> =
                    missing.iter().copied().filter(|&i| i < data_nodes).collect();
                if !wanted.is_empty() {
                    match self.decode_exact(session, &rows, &missing, &wanted) {
                        Ok(decoded) => {
                            for (&node, payload) in wanted.iter().zip(decoded) {
                                if let Some(slot) = rows.get_mut(node) {
                                    *slot = Some(payload);
                                }
                            }
                        }
                        Err(
                            EcError::TooManyErasures { .. } | EcError::UnrecoverablePattern { .. },
                        ) => {
                            let report = self.code.reconstruct_tiered(&mut rows)?;
                            approximate |= !report.fully_recovered;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            let mut data_rows = Vec::with_capacity(data_nodes);
            for row in rows.into_iter().take(data_nodes) {
                data_rows.push(row.ok_or_else(|| {
                    StoreError::Corrupt(format!("stripe {s} of '{id}' not materialised"))
                })?);
            }
            stripes.push(data_rows);
        }
        let (important, unimportant) =
            tiered::unpack(&self.code, &stripes, meta.important_len, meta.unimportant_len);
        Ok(ReadOutcome {
            important,
            unimportant,
            meta,
            degraded,
            approximate,
            integrity_failures,
        })
    }

    /// Exact (non-approximate) partial decode of `wanted` from the
    /// survivors, via the session's cached repair plans. Returns owned
    /// payloads in `wanted` order.
    fn decode_exact(
        &self,
        session: &mut StoreSession,
        rows: &[Option<Vec<u8>>],
        missing: &[usize],
        wanted: &[usize],
    ) -> Result<Vec<Vec<u8>>, EcError> {
        let views: Vec<Option<&[u8]>> = rows.iter().map(|r| r.as_deref()).collect();
        let out = session.dec.decode(&self.code, &views, missing, wanted)?;
        Ok(out.to_vec())
    }

    /// Kills a node: its shard files are deleted (disk-failure
    /// semantics) and it joins the dead set.
    pub fn kill_node(&self, node: usize) -> Result<(), StoreError> {
        let _topo = write_guard(&self.topo);
        if node >= self.code.total_nodes() {
            return Err(StoreError::User(format!(
                "node {node} out of range (0..{})",
                self.code.total_nodes()
            )));
        }
        let dir = self.root.join("nodes").join(node.to_string());
        fs::remove_dir_all(&dir)?;
        fs::create_dir_all(&dir)?;
        let mut state = self.state()?;
        if !state.dead_nodes.contains(&node) {
            state.dead_nodes.push(node);
            state.dead_nodes.sort_unstable();
        }
        self.write_state(&state)
    }

    /// Repairs every object after node failures (or detected bit-rot):
    /// rebuilds what the code permits, rewrites lost shard files,
    /// re-commits each touched manifest atomically, and clears the dead
    /// set. Objects with unrecoverable (zero-filled) ranges are marked
    /// `approximated` so later reads report themselves approximate.
    pub fn repair_all(&self) -> Result<RepairSummary, StoreError> {
        let _topo = write_guard(&self.topo);
        let mut summary = RepairSummary {
            important_intact: true,
            ..RepairSummary::default()
        };
        let ids = self.object_ids_unlocked()?;
        for id in &ids {
            let mut manifest = self.load_manifest(id)?;
            let mut touched = false;
            let mut fully = true;
            for s in 0..manifest.meta.stripes {
                let leaf_row = manifest
                    .leaves
                    .get(s)
                    .ok_or_else(|| {
                        StoreError::Corrupt(format!("manifest for '{id}' missing stripe {s}"))
                    })?
                    .clone();
                let mut rows: Vec<Option<Vec<u8>>> = Vec::with_capacity(leaf_row.len());
                for (node, expected) in leaf_row.iter().enumerate() {
                    match self.read_shard_checked(node, id, s, expected)? {
                        ShardRead::Ok(payload) => rows.push(Some(payload)),
                        ShardRead::Missing => rows.push(None),
                        ShardRead::Corrupt => {
                            summary.integrity_failures += 1;
                            rows.push(None);
                        }
                    }
                }
                let missing: Vec<usize> = rows
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.is_none().then_some(i))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let report = self.code.reconstruct_tiered(&mut rows)?;
                summary.important_intact &= report.important_recovered;
                fully &= report.fully_recovered;
                summary.bytes_lost += report
                    .lost_ranges
                    .iter()
                    .map(|(_, r)| r.len())
                    .sum::<usize>();
                for &node in &missing {
                    let payload = rows
                        .get(node)
                        .and_then(|r| r.as_deref())
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "repair of '{id}' stripe {s} did not materialise node {node}"
                            ))
                        })?;
                    self.write_shard(node, id, s, payload)?;
                    summary.shards_rebuilt += 1;
                    if let Some(slot) = manifest
                        .leaves
                        .get_mut(s)
                        .and_then(|row| row.get_mut(node))
                    {
                        *slot = merkle::leaf(payload);
                    }
                    touched = true;
                }
            }
            if touched {
                manifest.meta.approximated |= !fully;
                let rebuilt = Manifest::build(manifest.meta.clone(), manifest.leaves);
                write_atomic(&self.manifest_path(id), rebuilt.to_json().as_bytes())?;
            }
        }
        self.write_state(&StoreState::default())?;
        Ok(summary)
    }

    /// Sorted committed object ids (manifest file stems). Caller must
    /// hold the topology lock in some mode.
    fn object_ids_unlocked(&self) -> Result<Vec<String>, StoreError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.root.join("objects"))? {
            let path = entry?.path();
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                ids.push(stem.to_string());
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Sorted committed object ids — the scrubber's walk list.
    pub fn list_ids(&self) -> Result<Vec<String>, StoreError> {
        let _topo = read_guard(&self.topo);
        self.object_ids_unlocked()
    }

    /// Sweeps every shard of one object through the full integrity
    /// pipeline (framed length, CRC-32, Merkle leaf against the
    /// manifest) without decoding. Runs under the object *read* lock:
    /// scrubbing never blocks foreground reads of the same object.
    pub fn scan_object(&self, id: &str) -> Result<ObjectScan, StoreError> {
        Self::check_id(id)?;
        let _topo = read_guard(&self.topo);
        let _obj = self.locks.read_lock(id);
        let manifest = self.load_manifest(id)?;
        let framed_len = (CRC_BYTES + self.config.shard_len) as u64;
        let mut scan = ObjectScan {
            id: id.to_string(),
            stripes: Vec::with_capacity(manifest.leaves.len()),
            bytes_scanned: 0,
            corrupt: 0,
            missing: 0,
        };
        for (s, leaf_row) in manifest.leaves.iter().enumerate() {
            let mut shards = Vec::with_capacity(leaf_row.len());
            for (node, expected) in leaf_row.iter().enumerate() {
                match self.read_shard_checked(node, id, s, expected)? {
                    ShardRead::Ok(_) => {
                        scan.bytes_scanned += framed_len;
                        shards.push(ShardHealth::Ok);
                    }
                    ShardRead::Missing => {
                        scan.missing += 1;
                        shards.push(ShardHealth::Missing);
                    }
                    ShardRead::Corrupt => {
                        scan.bytes_scanned += framed_len;
                        scan.corrupt += 1;
                        shards.push(ShardHealth::Corrupt);
                    }
                }
            }
            scan.stripes.push(StripeScan { stripe: s, shards });
        }
        Ok(scan)
    }

    /// Integrity-checks a single shard file against its manifest leaf.
    pub fn verify_shard(
        &self,
        id: &str,
        stripe: usize,
        node: usize,
    ) -> Result<ShardHealth, StoreError> {
        Self::check_id(id)?;
        let _topo = read_guard(&self.topo);
        let _obj = self.locks.read_lock(id);
        let manifest = self.load_manifest(id)?;
        let expected = manifest
            .leaves
            .get(stripe)
            .and_then(|row| row.get(node))
            .ok_or_else(|| {
                StoreError::User(format!(
                    "shard ({stripe}, {node}) out of range for '{id}'"
                ))
            })?;
        Ok(match self.read_shard_checked(node, id, stripe, expected)? {
            ShardRead::Ok(_) => ShardHealth::Ok,
            ShardRead::Missing => ShardHealth::Missing,
            ShardRead::Corrupt => ShardHealth::Corrupt,
        })
    }

    /// Seeded, deterministic bit-rot fault injection (test/admin hook):
    /// flips `flips` single bits across distinct committed shard files.
    /// Targets, byte offsets (CRC header included) and bit positions all
    /// derive from `seed` via labelled [`apec_ec::rng::derive`] chains,
    /// so the same seed over the same store contents corrupts the same
    /// bits. Returns the hits actually applied (fewer than `flips` only
    /// when the store holds fewer distinct shard files).
    pub fn inject_bitrot(&self, seed: u64, flips: usize) -> Result<Vec<BitrotHit>, StoreError> {
        let _topo = read_guard(&self.topo);
        // Enumerate every shard file present on disk, in sorted
        // (id, stripe, node) order, so target selection is stable.
        let mut targets: Vec<(String, usize, usize)> = Vec::new();
        for id in self.object_ids_unlocked()? {
            let manifest = self.load_manifest(&id)?;
            for s in 0..manifest.leaves.len() {
                for node in 0..self.code.total_nodes() {
                    if self.shard_path(node, &id, s).exists() {
                        targets.push((id.clone(), s, node));
                    }
                }
            }
        }
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let mut used = vec![false; targets.len()];
        let mut hits = Vec::with_capacity(flips.min(targets.len()));
        for j in 0..flips.min(targets.len()) {
            // Linear-probe from the derived index to the next unused
            // target — deterministic and collision-free.
            let mut idx =
                (apec_ec::rng::derive(seed, &format!("bitrot-target-{j}")) % targets.len() as u64)
                    as usize;
            while used.get(idx).copied().unwrap_or(true) {
                idx = (idx + 1) % targets.len();
            }
            if let Some(slot) = used.get_mut(idx) {
                *slot = true;
            }
            let Some((id, stripe, node)) = targets.get(idx).cloned() else {
                continue;
            };
            let _obj = self.locks.write_lock(&id);
            let path = self.shard_path(node, &id, stripe);
            let mut bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(StoreError::Io(e)),
            };
            if bytes.is_empty() {
                continue;
            }
            let byte = (apec_ec::rng::derive(seed, &format!("bitrot-byte-{j}"))
                % bytes.len() as u64) as usize;
            let bit = (apec_ec::rng::derive(seed, &format!("bitrot-bit-{j}")) % 8) as u8;
            if let Some(b) = bytes.get_mut(byte) {
                *b ^= 1u8 << bit; // raw-xor-ok: seeded fault injection, single bit
            }
            fs::write(&path, &bytes)?;
            hits.push(BitrotHit {
                id,
                stripe,
                node,
                byte,
                bit,
            });
        }
        Ok(hits)
    }

    /// Heals one object in place: rebuilds missing/corrupt shards on
    /// *live* nodes, rewrites them, and re-commits the manifest.
    ///
    /// Unlike [`Store::repair_all`] this takes the topology lock in
    /// *read* mode (plus the object's write lock), so the maintenance
    /// daemon can heal bit-rot while foreground traffic continues on
    /// other objects. Shards on dead nodes are skipped (counted in
    /// `skipped_dead`) — resurrecting a dead node is `repair_all`'s job.
    ///
    /// The exact path decodes only the wanted shards from the plan's
    /// survivor set (the session's cached [`RepairPlan`] executor);
    /// the tiered approximate path is the fallback when the erasure
    /// pattern is beyond exact tolerance.
    ///
    /// [`RepairPlan`]: apec_ec::RepairPlan
    pub fn repair_object(
        &self,
        session: &mut StoreSession,
        id: &str,
    ) -> Result<ObjectRepair, StoreError> {
        Self::check_id(id)?;
        let _topo = read_guard(&self.topo);
        let _obj = self.locks.write_lock(id);
        let mut manifest = self.load_manifest(id)?;
        let dead = self.state()?.dead_nodes;
        let mut out = ObjectRepair {
            fully_recovered: true,
            ..ObjectRepair::default()
        };
        let mut touched = false;
        for s in 0..manifest.leaves.len() {
            let leaf_row = manifest
                .leaves
                .get(s)
                .ok_or_else(|| {
                    StoreError::Corrupt(format!("manifest for '{id}' missing stripe {s}"))
                })?
                .clone();
            let mut rows: Vec<Option<Vec<u8>>> = Vec::with_capacity(leaf_row.len());
            for (node, expected) in leaf_row.iter().enumerate() {
                match self.read_shard_checked(node, id, s, expected)? {
                    ShardRead::Ok(payload) => rows.push(Some(payload)),
                    ShardRead::Missing => rows.push(None),
                    ShardRead::Corrupt => {
                        out.integrity_failures += 1;
                        rows.push(None);
                    }
                }
            }
            let missing: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.is_none().then_some(i))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let rebuild: Vec<usize> = missing
                .iter()
                .copied()
                .filter(|n| !dead.contains(n))
                .collect();
            out.skipped_dead += missing.len() - rebuild.len();
            if rebuild.is_empty() {
                continue;
            }
            // Exact plan-driven partial decode first; approximate tiered
            // reconstruction only when the pattern is beyond tolerance.
            match self.decode_exact(session, &rows, &missing, &rebuild) {
                Ok(decoded) => {
                    for (&node, payload) in rebuild.iter().zip(decoded) {
                        if let Some(slot) = rows.get_mut(node) {
                            *slot = Some(payload);
                        }
                    }
                }
                Err(EcError::TooManyErasures { .. } | EcError::UnrecoverablePattern { .. }) => {
                    let report = self.code.reconstruct_tiered(&mut rows)?;
                    out.fully_recovered &= report.fully_recovered;
                    out.bytes_lost += report
                        .lost_ranges
                        .iter()
                        .map(|(_, r)| r.len())
                        .sum::<usize>();
                }
                Err(e) => return Err(e.into()),
            }
            for &node in &rebuild {
                let payload = rows.get(node).and_then(|r| r.as_deref()).ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "repair of '{id}' stripe {s} did not materialise node {node}"
                    ))
                })?;
                self.write_shard(node, id, s, payload)?;
                out.shards_rebuilt += 1;
                if let Some(slot) = manifest.leaves.get_mut(s).and_then(|row| row.get_mut(node)) {
                    *slot = merkle::leaf(payload);
                }
                touched = true;
            }
        }
        if touched {
            manifest.meta.approximated |= !out.fully_recovered;
            let rebuilt = Manifest::build(manifest.meta.clone(), manifest.leaves);
            write_atomic(&self.manifest_path(id), rebuilt.to_json().as_bytes())?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "apec-store-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_config() -> StoreConfig {
        StoreConfig {
            family: "rs".into(),
            k: 4,
            r: 1,
            g: 2,
            h: 3,
            structure: "uneven".into(),
            shard_len: 3 * 64,
        }
    }

    fn payloads(n: usize) -> (Vec<u8>, Vec<u8>) {
        let imp: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let unimp: Vec<u8> = (0..4 * n).map(|i| (i * 3 % 251) as u8).collect();
        (imp, unimp)
    }

    #[test]
    fn init_open_round_trip() {
        let root = temp_root("init");
        let s = Store::init(&root, test_config()).unwrap();
        assert_eq!(s.code().total_nodes(), 17);
        let s2 = Store::open(&root).unwrap();
        assert_eq!(*s2.config(), test_config());
        assert!(matches!(
            Store::init(&root, test_config()),
            Err(StoreError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_configs_are_rejected() {
        let root = temp_root("badcfg");
        let mut cfg = test_config();
        cfg.family = "zfec".into();
        assert!(Store::init(&root, cfg).is_err());
        let mut cfg = test_config();
        cfg.shard_len = 0;
        assert!(Store::init(&root, cfg).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn put_get_round_trip() {
        let root = temp_root("putget");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(500);
        let meta = store.put_object(&mut sess, "clip-1", &imp, &unimp).unwrap();
        assert!(meta.stripes >= 1);
        let out = store.read_object(&mut sess, "clip-1", &[]).unwrap();
        assert_eq!(out.important, imp);
        assert_eq!(out.unimportant, unimp);
        assert!(!out.degraded && !out.approximate);
        assert_eq!(out.integrity_failures, 0);
        assert_eq!(store.stat("clip-1").unwrap(), meta);
        assert!(store.put_object(&mut sess, "clip-1", &imp, &unimp).is_err());
        assert!(store.put_object(&mut sess, "bad id!", &imp, &unimp).is_err());
        assert!(store.read_object(&mut sess, "nope", &[]).is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_within_tolerance_then_repair_is_lossless() {
        let root = temp_root("repair1");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(300);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        store.kill_node(2).unwrap();
        assert_eq!(store.state().unwrap().dead_nodes, vec![2]);
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert!(out.degraded && !out.approximate);
        assert_eq!((out.important, out.unimportant), (imp.clone(), unimp.clone()));
        let summary = store.repair_all().unwrap();
        assert!(summary.important_intact);
        assert_eq!(summary.bytes_lost, 0);
        assert!(summary.shards_rebuilt >= 1);
        assert!(store.state().unwrap().dead_nodes.is_empty());
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert!(!out.degraded, "repair restored every shard");
        assert_eq!((out.important, out.unimportant), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn beyond_tolerance_repair_marks_object_approximated() {
        let root = temp_root("repair2");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(400);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Two data nodes of local stripe 1 (unimportant under Uneven):
        // beyond the local tolerance r=1.
        let n1 = store.code().params().data_node(1, 0);
        let n2 = store.code().params().data_node(1, 1);
        store.kill_node(n1).unwrap();
        store.kill_node(n2).unwrap();
        let summary = store.repair_all().unwrap();
        assert!(summary.important_intact);
        assert!(summary.bytes_lost > 0);
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert_eq!(out.important, imp, "important stream byte-exact");
        assert_ne!(out.unimportant, unimp, "unimportant stream has holes");
        assert_eq!(out.unimportant.len(), unimp.len());
        assert!(out.approximate, "object is flagged approximated");
        assert!(out.meta.approximated);
        assert_eq!(out.integrity_failures, 0, "rebuilt manifest matches disk");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn masked_read_is_degraded_but_exact() {
        let root = temp_root("mask");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(350);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        let out = store.read_object(&mut sess, "obj", &[0, 5]).unwrap();
        assert!(out.degraded);
        assert!(!out.approximate);
        assert_eq!(out.integrity_failures, 0, "masking is not corruption");
        assert_eq!((out.important, out.unimportant), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn writes_blocked_while_degraded() {
        let root = temp_root("blocked");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        store.kill_node(0).unwrap();
        assert!(matches!(
            store.put_object(&mut sess, "x", &[1], &[2]),
            Err(StoreError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_out_of_range_is_refused() {
        let root = temp_root("range");
        let store = Store::init(&root, test_config()).unwrap();
        assert!(store.kill_node(99).is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_and_reconstructed_around() {
        let root = temp_root("bitflip");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(400);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Flip one payload bit on a data node; the CRC catches it.
        let victim = store.shard_path(1, "obj", 0);
        let mut bytes = fs::read(&victim).unwrap();
        bytes[CRC_BYTES + 10] ^= 0x40; // raw-xor-ok: test fault injection, single byte
        fs::write(&victim, &bytes).unwrap();
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert_eq!(out.integrity_failures, 1, "corruption counted");
        assert!(out.degraded && !out.approximate);
        assert_eq!((out.important.clone(), out.unimportant.clone()), (imp.clone(), unimp.clone()));
        // Repair detects it too, rewrites the shard, and the store is clean.
        let summary = store.repair_all().unwrap();
        assert_eq!(summary.integrity_failures, 1);
        assert!(summary.shards_rebuilt >= 1);
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.integrity_failures, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn crc_forgery_is_caught_by_the_merkle_leaf() {
        let root = temp_root("forge");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(300);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Adversarial rewrite: change the payload AND recompute the CRC.
        // Only the manifest leaf can catch this one.
        let victim = store.shard_path(0, "obj", 0);
        let mut framed = fs::read(&victim).unwrap();
        let mut payload = framed.split_off(CRC_BYTES);
        payload[0] ^= 0xff; // raw-xor-ok: test CRC forgery, single byte
        let mut forged = crc32(&payload).to_le_bytes().to_vec();
        forged.extend_from_slice(&payload);
        fs::write(&victim, &forged).unwrap();
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert_eq!(out.integrity_failures, 1, "forged CRC still detected");
        assert_eq!((out.important, out.unimportant), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_metadata_is_typed_corrupt() {
        let root = temp_root("trunc");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(200);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Truncate the object manifest.
        let mpath = store.manifest_path("obj");
        let text = fs::read(&mpath).unwrap();
        fs::write(&mpath, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.stat("obj"), Err(StoreError::Corrupt(_))));
        assert!(matches!(
            store.read_object(&mut sess, "obj", &[]),
            Err(StoreError::Corrupt(_))
        ));
        // Truncate config.json: open fails typed.
        let cpath = root.join("config.json");
        let text = fs::read(&cpath).unwrap();
        fs::write(&cpath, &text[..text.len() - 3]).unwrap();
        assert!(matches!(Store::open(&root), Err(StoreError::Corrupt(_))));
        // Truncate state.json: state reads fail typed.
        let spath = root.join("state.json");
        fs::write(&spath, b"{\"dead_nodes\":[1").unwrap();
        assert!(matches!(store.state(), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers_round_trip() {
        let root = temp_root("threads");
        let store = Arc::new(Store::init(&root, test_config()).unwrap());
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(260);
        store.put_object(&mut sess, "shared", &imp, &unimp).unwrap();
        let mut handles = Vec::new();
        for t in 0..6usize {
            let store = Arc::clone(&store);
            let (imp, unimp) = (imp.clone(), unimp.clone());
            handles.push(std::thread::spawn(move || {
                let mut sess = StoreSession::new();
                // Each thread writes its own objects and re-reads both
                // its own and the shared one.
                for i in 0..4usize {
                    let id = format!("t{t}-o{i}");
                    let (ti, tu) = (vec![t as u8; 90 + i], vec![i as u8; 300 + t]);
                    store.put_object(&mut sess, &id, &ti, &tu).unwrap();
                    let out = store.read_object(&mut sess, &id, &[]).unwrap();
                    assert_eq!((out.important, out.unimportant), (ti, tu));
                    let out = store.read_object(&mut sess, "shared", &[]).unwrap();
                    assert_eq!((out.important, out.unimportant), (imp.clone(), unimp.clone()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().unwrap().len(), 25);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scan_and_verify_report_shard_health() {
        let root = temp_root("scan");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(400);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        let scan = store.scan_object("obj").unwrap();
        assert!(scan.clean());
        assert_eq!(scan.stripes.len(), store.stat("obj").unwrap().stripes);
        assert!(scan
            .stripes
            .iter()
            .all(|s| s.shards.len() == store.code().total_nodes()));
        let framed = (CRC_BYTES + store.config().shard_len) as u64;
        assert_eq!(
            scan.bytes_scanned,
            framed * (scan.stripes.len() * store.code().total_nodes()) as u64
        );
        // One flipped bit: scan and verify_shard both demote it to Corrupt.
        let victim = store.shard_path(3, "obj", 0);
        let mut bytes = fs::read(&victim).unwrap();
        bytes[CRC_BYTES + 7] ^= 0x04; // raw-xor-ok: test fault injection, single byte
        fs::write(&victim, &bytes).unwrap();
        let scan = store.scan_object("obj").unwrap();
        assert_eq!(scan.corrupt, 1);
        assert_eq!(scan.missing, 0);
        assert_eq!(scan.stripes[0].failed_nodes(), vec![3]);
        assert_eq!(store.verify_shard("obj", 0, 3).unwrap(), ShardHealth::Corrupt);
        assert_eq!(store.verify_shard("obj", 0, 4).unwrap(), ShardHealth::Ok);
        assert!(store.verify_shard("obj", 0, 99).is_err());
        // A killed node shows up as Missing, not Corrupt.
        store.kill_node(8).unwrap();
        let scan = store.scan_object("obj").unwrap();
        assert_eq!(scan.missing, scan.stripes.len());
        assert_eq!(store.verify_shard("obj", 0, 8).unwrap(), ShardHealth::Missing);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn inject_bitrot_is_seeded_and_deterministic() {
        // Two stores with identical contents: the same seed must corrupt
        // the same (object, stripe, node, byte, bit) targets in both.
        let mut all_hits = Vec::new();
        let mut roots = Vec::new();
        for run in 0..2 {
            let root = temp_root(&format!("inject{run}"));
            let store = Store::init(&root, test_config()).unwrap();
            let mut sess = StoreSession::new();
            let (imp, unimp) = payloads(350);
            for id in ["clip-a", "clip-b", "clip-c"] {
                store.put_object(&mut sess, id, &imp, &unimp).unwrap();
            }
            let hits = store.inject_bitrot(9, 5).unwrap();
            assert_eq!(hits.len(), 5);
            // Distinct shard files, every one now scanning corrupt.
            let mut keys: Vec<_> = hits.iter().map(|h| (h.id.clone(), h.stripe, h.node)).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), 5, "flips land on distinct shard files");
            let mut found = 0;
            for id in ["clip-a", "clip-b", "clip-c"] {
                let scan = store.scan_object(id).unwrap();
                assert_eq!(scan.missing, 0);
                found += scan.corrupt;
            }
            assert_eq!(found, 5, "every injected flip is surfaced by a scan");
            all_hits.push(hits);
            roots.push(root);
        }
        assert_eq!(all_hits[0], all_hits[1], "same seed, same hits");
        let other = Store::open(&roots[0]).unwrap().inject_bitrot(10, 5).unwrap();
        assert_ne!(all_hits[0], other, "different seed, different hits");
        for root in roots {
            fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn repair_object_heals_bitrot_under_read_topology() {
        let root = temp_root("objrepair");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(420);
        store.put_object(&mut sess, "a", &imp, &unimp).unwrap();
        store.put_object(&mut sess, "b", &imp, &unimp).unwrap();
        let hits = store.inject_bitrot(21, 3).unwrap();
        assert_eq!(hits.len(), 3);
        for id in ["a", "b"] {
            let repair = store.repair_object(&mut sess, id).unwrap();
            assert!(repair.fully_recovered);
            assert_eq!(repair.bytes_lost, 0);
            assert_eq!(repair.skipped_dead, 0);
            let scan = store.scan_object(id).unwrap();
            assert!(scan.clean(), "repair_object left '{id}' clean");
            let out = store.read_object(&mut sess, id, &[]).unwrap();
            assert!(!out.degraded);
            assert_eq!((out.important, out.unimportant), (imp.clone(), unimp.clone()));
        }
        // A second pass is a no-op.
        let repair = store.repair_object(&mut sess, "a").unwrap();
        assert_eq!(repair.shards_rebuilt, 0);
        assert_eq!(repair.integrity_failures, 0);
        // Dead-node shards are skipped, not resurrected: that stays
        // repair_all's job, and the dead set survives the object heal.
        store.kill_node(5).unwrap();
        let repair = store.repair_object(&mut sess, "a").unwrap();
        let stripes = store.stat("a").unwrap().stripes;
        assert_eq!(repair.skipped_dead, stripes);
        assert_eq!(repair.shards_rebuilt, 0);
        assert_eq!(store.state().unwrap().dead_nodes, vec![5]);
        fs::remove_dir_all(&root).unwrap();
    }

    // Skipped under Miri: the proptest runner is far too slow there and the
    // property is pure std-fs + arithmetic anyway.
    #[cfg(not(miri))]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// A single bit flipped at *any* position in a committed
            /// shard file — CRC header bytes included — is always
            /// surfaced as an erasure and decoded around: the read
            /// returns byte-exact data and counts exactly one integrity
            /// failure. Corruption is never returned as data.
            #[test]
            fn any_single_bit_flip_is_surfaced_as_erasure(
                node in 0usize..17,
                stripe_pick in 0usize..64,
                byte_pick in 0usize..(CRC_BYTES + 3 * 64),
                bit in 0u8..8,
            ) {
                let root = temp_root("prop-bitflip");
                let store = Store::init(&root, test_config()).unwrap();
                let mut sess = StoreSession::new();
                let (imp, unimp) = payloads(300);
                store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
                let stripes = store.stat("obj").unwrap().stripes;
                let stripe = stripe_pick % stripes;
                let victim = store.shard_path(node, "obj", stripe);
                let mut bytes = fs::read(&victim).unwrap();
                let byte = byte_pick % bytes.len();
                bytes[byte] ^= 1u8 << bit; // raw-xor-ok: test fault injection, single bit
                fs::write(&victim, &bytes).unwrap();
                prop_assert_eq!(store.verify_shard("obj", stripe, node).unwrap(), ShardHealth::Corrupt);
                let out = store.read_object(&mut sess, "obj", &[]).unwrap();
                prop_assert_eq!(out.integrity_failures, 1);
                prop_assert!(out.degraded && !out.approximate);
                prop_assert_eq!(&out.important, &imp);
                prop_assert_eq!(&out.unimportant, &unimp);
                fs::remove_dir_all(&root).unwrap();
            }
        }
    }
}
