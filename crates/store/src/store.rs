//! The [`Store`] handle: thread-safe, integrity-checked object I/O over
//! the on-disk layout described in the [crate docs](crate).
//!
//! # Locking model
//!
//! | operation | topology lock | object lock |
//! |---|---|---|
//! | `put_object` | read | write |
//! | `read_object` / `stat` | read | read |
//! | `kill_node` / `repair_all` | **write** | — (excluded via topology) |
//!
//! The topology lock serialises cluster-shape mutations (killing and
//! repairing nodes) against all object traffic; per-object locks let
//! reads of one object run concurrently with each other and with traffic
//! on other objects. Lock acquisition recovers from poisoning (a
//! panicked holder) instead of propagating the panic, so one crashed
//! worker cannot wedge the daemon.
//!
//! # Integrity pipeline
//!
//! Every shard read is checked three ways before its bytes reach the
//! decoder: exact framed length, CRC-32 over the payload, and the
//! payload's Merkle leaf against the object manifest. A shard failing
//! any check is demoted to an erasure (and counted), so corruption is
//! repaired *around* exactly like a missing disk — it can never poison
//! a reconstruction silently.

use crate::crc::{crc32, CRC_BYTES};
use crate::hash::Digest;
use crate::merkle;
use crate::meta::{read_optional, write_atomic, Manifest, ObjectMeta, StoreConfig, StoreState};
use crate::StoreError;
use apec_ec::{DecodeSession, EcError, EncodeSession, ErasureCode};
use approx_code::{tiered, ApproxCode};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Per-worker reusable codec state: a warm [`EncodeSession`] for puts
/// and a warm [`DecodeSession`] (plan cache + scratch arena) for
/// degraded reads. One per worker thread; never shared.
#[derive(Default)]
pub struct StoreSession {
    /// Encode-side arena.
    pub enc: EncodeSession,
    /// Decode-side plan cache and scratch.
    pub dec: DecodeSession,
}

impl StoreSession {
    /// Fresh session; buffers and plan caches warm up on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of [`Store::read_object`].
#[derive(Debug)]
pub struct ReadOutcome {
    /// The important byte stream (always byte-exact unless the object
    /// was previously approximated by an over-tolerance repair).
    pub important: Vec<u8>,
    /// The unimportant byte stream (may contain zero-filled holes when
    /// `approximate` is set).
    pub unimportant: Vec<u8>,
    /// Object metadata.
    pub meta: ObjectMeta,
    /// At least one shard had to be reconstructed (missing, masked, or
    /// failed an integrity check).
    pub degraded: bool,
    /// The returned bytes are not guaranteed byte-exact: either this
    /// read fell back to tiered (approximate) reconstruction, or a past
    /// repair already zero-filled part of the object.
    pub approximate: bool,
    /// Shards that existed on disk but failed length/CRC/Merkle checks
    /// during this read.
    pub integrity_failures: usize,
}

/// Outcome of a repair pass over the whole store.
#[derive(Debug, Default)]
pub struct RepairSummary {
    /// Shard files rewritten.
    pub shards_rebuilt: usize,
    /// Bytes that could not be rebuilt (zero-filled, left to the
    /// approximate-recovery layer).
    pub bytes_lost: usize,
    /// `true` if every important byte survived.
    pub important_intact: bool,
    /// Corrupt (not merely missing) shards detected and rebuilt.
    pub integrity_failures: usize,
}

/// How a framed shard file read resolved.
enum ShardRead {
    /// Payload passed length, CRC and Merkle-leaf checks.
    Ok(Vec<u8>),
    /// File absent (node dead or never written).
    Missing,
    /// File present but failed an integrity check.
    Corrupt,
}

/// A handle to an on-disk store. `Sync`: share it behind an `Arc` and
/// call it from many threads.
pub struct Store {
    root: PathBuf,
    config: StoreConfig,
    code: ApproxCode,
    /// Cluster-shape lock; see the module docs for the matrix.
    topo: RwLock<()>,
    /// Lazily-populated per-object locks.
    objects: Mutex<HashMap<String, Arc<RwLock<()>>>>,
}

/// Acquire a read guard, absorbing poisoning from a panicked holder
/// (the guarded data lives on disk; the in-memory token carries none).
fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Acquire a write guard, absorbing poisoning.
fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Lock a mutex, absorbing poisoning.
fn mutex_guard<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Store {
    /// Creates a new store directory.
    pub fn init(root: &Path, config: StoreConfig) -> Result<Store, StoreError> {
        let code = config.code()?;
        config.check_shard_len(&code)?;
        if root.join("config.json").exists() {
            return Err(StoreError::User(format!(
                "{} already contains a store",
                root.display()
            )));
        }
        fs::create_dir_all(root.join("objects"))?;
        for n in 0..code.total_nodes() {
            fs::create_dir_all(root.join("nodes").join(n.to_string()))?;
        }
        write_atomic(&root.join("config.json"), config.to_json().as_bytes())?;
        write_atomic(&root.join("state.json"), StoreState::default().to_json().as_bytes())?;
        Ok(Store {
            root: root.to_path_buf(),
            config,
            code,
            topo: RwLock::new(()),
            objects: Mutex::new(HashMap::new()),
        })
    }

    /// Opens an existing store.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        let text = read_optional(&root.join("config.json"))?
            .ok_or_else(|| StoreError::Corrupt(format!("{}: missing config.json", root.display())))?;
        let config = StoreConfig::from_json(&text)?;
        let code = config.code()?;
        config.check_shard_len(&code)?;
        Ok(Store {
            root: root.to_path_buf(),
            config,
            code,
            topo: RwLock::new(()),
            objects: Mutex::new(HashMap::new()),
        })
    }

    /// The store's code configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The store's instantiated code.
    pub fn code(&self) -> &ApproxCode {
        &self.code
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn state_path(&self) -> PathBuf {
        self.root.join("state.json")
    }

    fn shard_path(&self, node: usize, id: &str, stripe: usize) -> PathBuf {
        self.root
            .join("nodes")
            .join(node.to_string())
            .join(format!("{id}_{stripe}.shard"))
    }

    fn manifest_path(&self, id: &str) -> PathBuf {
        self.root.join("objects").join(format!("{id}.json"))
    }

    /// Reads the mutable state (dead-node set).
    pub fn state(&self) -> Result<StoreState, StoreError> {
        let text = read_optional(&self.state_path())?
            .ok_or_else(|| StoreError::Corrupt("missing state.json".to_string()))?;
        StoreState::from_json(&text)
    }

    fn write_state(&self, state: &StoreState) -> Result<(), StoreError> {
        write_atomic(&self.state_path(), state.to_json().as_bytes())?;
        Ok(())
    }

    fn check_id(id: &str) -> Result<(), StoreError> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(StoreError::User(format!(
                "object id '{id}' must be non-empty [A-Za-z0-9_-]"
            )));
        }
        Ok(())
    }

    /// The lock guarding `id`, created on first touch.
    fn object_lock(&self, id: &str) -> Arc<RwLock<()>> {
        let mut map = mutex_guard(&self.objects);
        Arc::clone(map.entry(id.to_string()).or_default())
    }

    fn load_manifest(&self, id: &str) -> Result<Manifest, StoreError> {
        let text = read_optional(&self.manifest_path(id))?
            .ok_or_else(|| StoreError::User(format!("no such object '{id}'")))?;
        let manifest = Manifest::from_json(&text, &format!("manifest for '{id}'"))?;
        self.check_manifest_shape(&manifest)?;
        Ok(manifest)
    }

    /// Rejects manifests whose leaf matrix disagrees with the code shape
    /// (a manifest from a differently-configured store, or a truncated
    /// rewrite that still parsed).
    fn check_manifest_shape(&self, manifest: &Manifest) -> Result<(), StoreError> {
        let total = self.code.total_nodes();
        if manifest.leaves.iter().any(|row| row.len() != total) {
            return Err(StoreError::Corrupt(format!(
                "manifest for '{}' has wrong leaf width (expected {total} nodes)",
                manifest.meta.id
            )));
        }
        Ok(())
    }

    /// Writes one CRC-framed shard file.
    fn write_shard(
        &self,
        node: usize,
        id: &str,
        stripe: usize,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let mut framed = Vec::with_capacity(CRC_BYTES + payload.len());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        fs::write(self.shard_path(node, id, stripe), &framed)?;
        Ok(())
    }

    /// Reads one framed shard file and runs the full integrity pipeline
    /// against the manifest leaf.
    fn read_shard_checked(
        &self,
        node: usize,
        id: &str,
        stripe: usize,
        expected_leaf: &Digest,
    ) -> Result<ShardRead, StoreError> {
        let mut framed = match fs::read(self.shard_path(node, id, stripe)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ShardRead::Missing),
            Err(e) => return Err(StoreError::Io(e)),
        };
        if framed.len() != CRC_BYTES + self.config.shard_len {
            return Ok(ShardRead::Corrupt);
        }
        let payload = framed.split_off(CRC_BYTES);
        let mut stored = [0u8; CRC_BYTES];
        stored.copy_from_slice(&framed);
        if u32::from_le_bytes(stored) != crc32(&payload) {
            return Ok(ShardRead::Corrupt);
        }
        if merkle::leaf(&payload) != *expected_leaf {
            return Ok(ShardRead::Corrupt);
        }
        Ok(ShardRead::Ok(payload))
    }

    /// Stores a two-tier object (important + unimportant byte streams).
    ///
    /// Shard files are written first; the manifest commits the object
    /// last and atomically, so a crash mid-put leaves no visible object
    /// (orphan shard files are simply overwritten by a retried put).
    pub fn put_object(
        &self,
        session: &mut StoreSession,
        id: &str,
        important: &[u8],
        unimportant: &[u8],
    ) -> Result<ObjectMeta, StoreError> {
        Self::check_id(id)?;
        let _topo = read_guard(&self.topo);
        let object_lock = self.object_lock(id);
        let _obj = write_guard(&object_lock);
        if self.manifest_path(id).exists() {
            return Err(StoreError::User(format!("object '{id}' already exists")));
        }
        let dead = self.state()?.dead_nodes;
        if !dead.is_empty() {
            return Err(StoreError::User(format!(
                "cannot write while nodes {dead:?} are dead; repair first"
            )));
        }
        let packed = tiered::pack(&self.code, important, unimportant, self.config.shard_len)?;
        let mut leaves: Vec<Vec<Digest>> = Vec::with_capacity(packed.stripes.len());
        let mut refs: Vec<&[u8]> = Vec::with_capacity(self.code.data_nodes());
        for (s, rows) in packed.stripes.iter().enumerate() {
            refs.clear();
            refs.extend(rows.iter().map(|b| b.as_slice()));
            let parity = session.enc.encode(&self.code, &refs)?;
            let mut stripe_leaves = Vec::with_capacity(self.code.total_nodes());
            for (node, payload) in refs
                .iter()
                .copied()
                .chain(parity.iter().map(|p| p.as_slice()))
                .enumerate()
            {
                self.write_shard(node, id, s, payload)?;
                stripe_leaves.push(merkle::leaf(payload));
            }
            leaves.push(stripe_leaves);
        }
        let meta = ObjectMeta {
            id: id.to_string(),
            stripes: packed.stripes.len(),
            important_len: important.len(),
            unimportant_len: unimportant.len(),
            approximated: false,
        };
        let manifest = Manifest::build(meta.clone(), leaves);
        write_atomic(&self.manifest_path(id), manifest.to_json().as_bytes())?;
        Ok(meta)
    }

    /// Object metadata (from the manifest, Merkle-verified).
    pub fn stat(&self, id: &str) -> Result<ObjectMeta, StoreError> {
        let _topo = read_guard(&self.topo);
        let object_lock = self.object_lock(id);
        let _obj = read_guard(&object_lock);
        Ok(self.load_manifest(id)?.meta)
    }

    /// Lists stored objects.
    pub fn list(&self) -> Result<Vec<ObjectMeta>, StoreError> {
        let _topo = read_guard(&self.topo);
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("objects"))? {
            let path = entry?.path();
            let text = fs::read_to_string(&path)?;
            let what = format!("manifest {}", path.display());
            out.push(Manifest::from_json(&text, &what)?.meta);
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Fetches an object's two streams, reconstructing around missing,
    /// masked and corrupt shards. `mask` lists nodes to treat as dead
    /// for this read (the serving daemon's degraded-get), on top of
    /// whatever is actually missing on disk. Stored files are untouched.
    pub fn read_object(
        &self,
        session: &mut StoreSession,
        id: &str,
        mask: &[usize],
    ) -> Result<ReadOutcome, StoreError> {
        let _topo = read_guard(&self.topo);
        let object_lock = self.object_lock(id);
        let _obj = read_guard(&object_lock);
        let manifest = self.load_manifest(id)?;
        let meta = manifest.meta.clone();
        let total = self.code.total_nodes();
        let data_nodes = self.code.data_nodes();
        let mut integrity_failures = 0usize;
        let mut degraded = false;
        let mut approximate = meta.approximated;
        let mut stripes: Vec<Vec<Vec<u8>>> = Vec::with_capacity(meta.stripes);

        for (s, leaf_row) in manifest.leaves.iter().enumerate() {
            let mut rows: Vec<Option<Vec<u8>>> = Vec::with_capacity(total);
            for (node, expected) in leaf_row.iter().enumerate() {
                if mask.contains(&node) {
                    rows.push(None);
                    continue;
                }
                match self.read_shard_checked(node, id, s, expected)? {
                    ShardRead::Ok(payload) => rows.push(Some(payload)),
                    ShardRead::Missing => rows.push(None),
                    ShardRead::Corrupt => {
                        integrity_failures += 1;
                        rows.push(None);
                    }
                }
            }
            let missing: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.is_none().then_some(i))
                .collect();
            if !missing.is_empty() {
                degraded = true;
                let wanted: Vec<usize> =
                    missing.iter().copied().filter(|&i| i < data_nodes).collect();
                if !wanted.is_empty() {
                    match self.decode_exact(session, &rows, &missing, &wanted) {
                        Ok(decoded) => {
                            for (&node, payload) in wanted.iter().zip(decoded) {
                                if let Some(slot) = rows.get_mut(node) {
                                    *slot = Some(payload);
                                }
                            }
                        }
                        Err(
                            EcError::TooManyErasures { .. } | EcError::UnrecoverablePattern { .. },
                        ) => {
                            let report = self.code.reconstruct_tiered(&mut rows)?;
                            approximate |= !report.fully_recovered;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            let mut data_rows = Vec::with_capacity(data_nodes);
            for row in rows.into_iter().take(data_nodes) {
                data_rows.push(row.ok_or_else(|| {
                    StoreError::Corrupt(format!("stripe {s} of '{id}' not materialised"))
                })?);
            }
            stripes.push(data_rows);
        }
        let (important, unimportant) =
            tiered::unpack(&self.code, &stripes, meta.important_len, meta.unimportant_len);
        Ok(ReadOutcome {
            important,
            unimportant,
            meta,
            degraded,
            approximate,
            integrity_failures,
        })
    }

    /// Exact (non-approximate) partial decode of `wanted` from the
    /// survivors, via the session's cached repair plans. Returns owned
    /// payloads in `wanted` order.
    fn decode_exact(
        &self,
        session: &mut StoreSession,
        rows: &[Option<Vec<u8>>],
        missing: &[usize],
        wanted: &[usize],
    ) -> Result<Vec<Vec<u8>>, EcError> {
        let views: Vec<Option<&[u8]>> = rows.iter().map(|r| r.as_deref()).collect();
        let out = session.dec.decode(&self.code, &views, missing, wanted)?;
        Ok(out.to_vec())
    }

    /// Kills a node: its shard files are deleted (disk-failure
    /// semantics) and it joins the dead set.
    pub fn kill_node(&self, node: usize) -> Result<(), StoreError> {
        let _topo = write_guard(&self.topo);
        if node >= self.code.total_nodes() {
            return Err(StoreError::User(format!(
                "node {node} out of range (0..{})",
                self.code.total_nodes()
            )));
        }
        let dir = self.root.join("nodes").join(node.to_string());
        fs::remove_dir_all(&dir)?;
        fs::create_dir_all(&dir)?;
        let mut state = self.state()?;
        if !state.dead_nodes.contains(&node) {
            state.dead_nodes.push(node);
            state.dead_nodes.sort_unstable();
        }
        self.write_state(&state)
    }

    /// Repairs every object after node failures (or detected bit-rot):
    /// rebuilds what the code permits, rewrites lost shard files,
    /// re-commits each touched manifest atomically, and clears the dead
    /// set. Objects with unrecoverable (zero-filled) ranges are marked
    /// `approximated` so later reads report themselves approximate.
    pub fn repair_all(&self) -> Result<RepairSummary, StoreError> {
        let _topo = write_guard(&self.topo);
        let mut summary = RepairSummary {
            important_intact: true,
            ..RepairSummary::default()
        };
        let ids: Vec<String> = {
            let mut ids = Vec::new();
            for entry in fs::read_dir(self.root.join("objects"))? {
                let path = entry?.path();
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_string());
                }
            }
            ids.sort();
            ids
        };
        for id in &ids {
            let mut manifest = self.load_manifest(id)?;
            let mut touched = false;
            let mut fully = true;
            for s in 0..manifest.meta.stripes {
                let leaf_row = manifest
                    .leaves
                    .get(s)
                    .ok_or_else(|| {
                        StoreError::Corrupt(format!("manifest for '{id}' missing stripe {s}"))
                    })?
                    .clone();
                let mut rows: Vec<Option<Vec<u8>>> = Vec::with_capacity(leaf_row.len());
                for (node, expected) in leaf_row.iter().enumerate() {
                    match self.read_shard_checked(node, id, s, expected)? {
                        ShardRead::Ok(payload) => rows.push(Some(payload)),
                        ShardRead::Missing => rows.push(None),
                        ShardRead::Corrupt => {
                            summary.integrity_failures += 1;
                            rows.push(None);
                        }
                    }
                }
                let missing: Vec<usize> = rows
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.is_none().then_some(i))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let report = self.code.reconstruct_tiered(&mut rows)?;
                summary.important_intact &= report.important_recovered;
                fully &= report.fully_recovered;
                summary.bytes_lost += report
                    .lost_ranges
                    .iter()
                    .map(|(_, r)| r.len())
                    .sum::<usize>();
                for &node in &missing {
                    let payload = rows
                        .get(node)
                        .and_then(|r| r.as_deref())
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "repair of '{id}' stripe {s} did not materialise node {node}"
                            ))
                        })?;
                    self.write_shard(node, id, s, payload)?;
                    summary.shards_rebuilt += 1;
                    if let Some(slot) = manifest
                        .leaves
                        .get_mut(s)
                        .and_then(|row| row.get_mut(node))
                    {
                        *slot = merkle::leaf(payload);
                    }
                    touched = true;
                }
            }
            if touched {
                manifest.meta.approximated |= !fully;
                let rebuilt = Manifest::build(manifest.meta.clone(), manifest.leaves);
                write_atomic(&self.manifest_path(id), rebuilt.to_json().as_bytes())?;
            }
        }
        self.write_state(&StoreState::default())?;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "apec-store-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_config() -> StoreConfig {
        StoreConfig {
            family: "rs".into(),
            k: 4,
            r: 1,
            g: 2,
            h: 3,
            structure: "uneven".into(),
            shard_len: 3 * 64,
        }
    }

    fn payloads(n: usize) -> (Vec<u8>, Vec<u8>) {
        let imp: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let unimp: Vec<u8> = (0..4 * n).map(|i| (i * 3 % 251) as u8).collect();
        (imp, unimp)
    }

    #[test]
    fn init_open_round_trip() {
        let root = temp_root("init");
        let s = Store::init(&root, test_config()).unwrap();
        assert_eq!(s.code().total_nodes(), 17);
        let s2 = Store::open(&root).unwrap();
        assert_eq!(*s2.config(), test_config());
        assert!(matches!(
            Store::init(&root, test_config()),
            Err(StoreError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_configs_are_rejected() {
        let root = temp_root("badcfg");
        let mut cfg = test_config();
        cfg.family = "zfec".into();
        assert!(Store::init(&root, cfg).is_err());
        let mut cfg = test_config();
        cfg.shard_len = 0;
        assert!(Store::init(&root, cfg).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn put_get_round_trip() {
        let root = temp_root("putget");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(500);
        let meta = store.put_object(&mut sess, "clip-1", &imp, &unimp).unwrap();
        assert!(meta.stripes >= 1);
        let out = store.read_object(&mut sess, "clip-1", &[]).unwrap();
        assert_eq!(out.important, imp);
        assert_eq!(out.unimportant, unimp);
        assert!(!out.degraded && !out.approximate);
        assert_eq!(out.integrity_failures, 0);
        assert_eq!(store.stat("clip-1").unwrap(), meta);
        assert!(store.put_object(&mut sess, "clip-1", &imp, &unimp).is_err());
        assert!(store.put_object(&mut sess, "bad id!", &imp, &unimp).is_err());
        assert!(store.read_object(&mut sess, "nope", &[]).is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_within_tolerance_then_repair_is_lossless() {
        let root = temp_root("repair1");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(300);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        store.kill_node(2).unwrap();
        assert_eq!(store.state().unwrap().dead_nodes, vec![2]);
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert!(out.degraded && !out.approximate);
        assert_eq!((out.important, out.unimportant), (imp.clone(), unimp.clone()));
        let summary = store.repair_all().unwrap();
        assert!(summary.important_intact);
        assert_eq!(summary.bytes_lost, 0);
        assert!(summary.shards_rebuilt >= 1);
        assert!(store.state().unwrap().dead_nodes.is_empty());
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert!(!out.degraded, "repair restored every shard");
        assert_eq!((out.important, out.unimportant), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn beyond_tolerance_repair_marks_object_approximated() {
        let root = temp_root("repair2");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(400);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Two data nodes of local stripe 1 (unimportant under Uneven):
        // beyond the local tolerance r=1.
        let n1 = store.code().params().data_node(1, 0);
        let n2 = store.code().params().data_node(1, 1);
        store.kill_node(n1).unwrap();
        store.kill_node(n2).unwrap();
        let summary = store.repair_all().unwrap();
        assert!(summary.important_intact);
        assert!(summary.bytes_lost > 0);
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert_eq!(out.important, imp, "important stream byte-exact");
        assert_ne!(out.unimportant, unimp, "unimportant stream has holes");
        assert_eq!(out.unimportant.len(), unimp.len());
        assert!(out.approximate, "object is flagged approximated");
        assert!(out.meta.approximated);
        assert_eq!(out.integrity_failures, 0, "rebuilt manifest matches disk");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn masked_read_is_degraded_but_exact() {
        let root = temp_root("mask");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(350);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        let out = store.read_object(&mut sess, "obj", &[0, 5]).unwrap();
        assert!(out.degraded);
        assert!(!out.approximate);
        assert_eq!(out.integrity_failures, 0, "masking is not corruption");
        assert_eq!((out.important, out.unimportant), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn writes_blocked_while_degraded() {
        let root = temp_root("blocked");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        store.kill_node(0).unwrap();
        assert!(matches!(
            store.put_object(&mut sess, "x", &[1], &[2]),
            Err(StoreError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_out_of_range_is_refused() {
        let root = temp_root("range");
        let store = Store::init(&root, test_config()).unwrap();
        assert!(store.kill_node(99).is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_and_reconstructed_around() {
        let root = temp_root("bitflip");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(400);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Flip one payload bit on a data node; the CRC catches it.
        let victim = store.shard_path(1, "obj", 0);
        let mut bytes = fs::read(&victim).unwrap();
        bytes[CRC_BYTES + 10] ^= 0x40; // raw-xor-ok: test fault injection, single byte
        fs::write(&victim, &bytes).unwrap();
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert_eq!(out.integrity_failures, 1, "corruption counted");
        assert!(out.degraded && !out.approximate);
        assert_eq!((out.important.clone(), out.unimportant.clone()), (imp.clone(), unimp.clone()));
        // Repair detects it too, rewrites the shard, and the store is clean.
        let summary = store.repair_all().unwrap();
        assert_eq!(summary.integrity_failures, 1);
        assert!(summary.shards_rebuilt >= 1);
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.integrity_failures, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn crc_forgery_is_caught_by_the_merkle_leaf() {
        let root = temp_root("forge");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(300);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Adversarial rewrite: change the payload AND recompute the CRC.
        // Only the manifest leaf can catch this one.
        let victim = store.shard_path(0, "obj", 0);
        let mut framed = fs::read(&victim).unwrap();
        let mut payload = framed.split_off(CRC_BYTES);
        payload[0] ^= 0xff; // raw-xor-ok: test CRC forgery, single byte
        let mut forged = crc32(&payload).to_le_bytes().to_vec();
        forged.extend_from_slice(&payload);
        fs::write(&victim, &forged).unwrap();
        let out = store.read_object(&mut sess, "obj", &[]).unwrap();
        assert_eq!(out.integrity_failures, 1, "forged CRC still detected");
        assert_eq!((out.important, out.unimportant), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_metadata_is_typed_corrupt() {
        let root = temp_root("trunc");
        let store = Store::init(&root, test_config()).unwrap();
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(200);
        store.put_object(&mut sess, "obj", &imp, &unimp).unwrap();
        // Truncate the object manifest.
        let mpath = store.manifest_path("obj");
        let text = fs::read(&mpath).unwrap();
        fs::write(&mpath, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.stat("obj"), Err(StoreError::Corrupt(_))));
        assert!(matches!(
            store.read_object(&mut sess, "obj", &[]),
            Err(StoreError::Corrupt(_))
        ));
        // Truncate config.json: open fails typed.
        let cpath = root.join("config.json");
        let text = fs::read(&cpath).unwrap();
        fs::write(&cpath, &text[..text.len() - 3]).unwrap();
        assert!(matches!(Store::open(&root), Err(StoreError::Corrupt(_))));
        // Truncate state.json: state reads fail typed.
        let spath = root.join("state.json");
        fs::write(&spath, b"{\"dead_nodes\":[1").unwrap();
        assert!(matches!(store.state(), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers_round_trip() {
        let root = temp_root("threads");
        let store = Arc::new(Store::init(&root, test_config()).unwrap());
        let mut sess = StoreSession::new();
        let (imp, unimp) = payloads(260);
        store.put_object(&mut sess, "shared", &imp, &unimp).unwrap();
        let mut handles = Vec::new();
        for t in 0..6usize {
            let store = Arc::clone(&store);
            let (imp, unimp) = (imp.clone(), unimp.clone());
            handles.push(std::thread::spawn(move || {
                let mut sess = StoreSession::new();
                // Each thread writes its own objects and re-reads both
                // its own and the shared one.
                for i in 0..4usize {
                    let id = format!("t{t}-o{i}");
                    let (ti, tu) = (vec![t as u8; 90 + i], vec![i as u8; 300 + t]);
                    store.put_object(&mut sess, &id, &ti, &tu).unwrap();
                    let out = store.read_object(&mut sess, &id, &[]).unwrap();
                    assert_eq!((out.important, out.unimportant), (ti, tu));
                    let out = store.read_object(&mut sess, "shared", &[]).unwrap();
                    assert_eq!((out.important, out.unimportant), (imp.clone(), unimp.clone()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().unwrap().len(), 25);
        fs::remove_dir_all(&root).unwrap();
    }
}
