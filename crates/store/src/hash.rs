//! Std-only SHA-256, used for the Merkle manifests.
//!
//! A straight FIPS 180-4 implementation over `u32` words; no lookup
//! tables, no unsafe, no dependencies. Throughput is irrelevant here —
//! manifests hash a handful of shards per object — but correctness is
//! pinned by the NIST test vectors below.

use std::fmt;

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex rendering (64 chars), the manifest wire format.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for &b in &self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parse a 64-char hex string back into a digest. Returns `None` on
    /// any length or character mismatch — manifest parsing turns that
    /// into a typed `Corrupt` error.
    pub fn parse_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let nib = |c: u8| -> Option<u8> {
            match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                b'A'..=b'F' => Some(c - b'A' + 10),
                _ => None,
            }
        };
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            out[i] = (nib(pair[0])? << 4) | nib(pair[1])?;
        }
        Some(Digest(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 state. Feed bytes with [`Sha256::update`], close
/// with [`Sha256::finish`].
pub struct Sha256 {
    h: [u32; 8],
    block: [u8; 64],
    block_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0u8; 64],
            block_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.block_len > 0 {
            let take = rest.len().min(64 - self.block_len);
            self.block[self.block_len..self.block_len + take].copy_from_slice(&rest[..take]);
            self.block_len += take;
            rest = &rest[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
        }
        while rest.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&rest[..64]);
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.block[..rest.len()].copy_from_slice(rest);
            self.block_len = rest.len();
        }
    }

    /// Pad, finalize and return the digest.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        // Manual length trailer: update() would recount these 8 bytes.
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
        self.h[5] = self.h[5].wrapping_add(f);
        self.h[6] = self.h[6].wrapping_add(g);
        self.h[7] = self.h[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_vectors() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn chunked_updates_match_one_shot() {
        let data: Vec<u8> = (0..311u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = sha256(&data);
        for split in [1usize, 7, 63, 64, 65, 200] {
            let mut h = Sha256::new();
            for chunk in data.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(h.finish(), whole, "split={split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::parse_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::parse_hex("zz"), None);
        assert_eq!(Digest::parse_hex(&"0".repeat(63)), None);
        assert_eq!(Digest::parse_hex(&"g".repeat(64)), None);
    }
}
