//! Static construction auditor for every shipped erasure code.
//!
//! Erasure-code bugs are the quiet kind: a wrong Vandermonde column, a
//! dropped adjuster diagonal or an off-by-one parity support still
//! round-trips most random test stripes, and only loses data on the one
//! erasure pattern nobody generated. This crate closes that gap by
//! checking the *algebra* instead of sampling behaviour:
//!
//! 1. **Generator extraction** ([`probe()`]): every code is a linear map
//!    over GF(2^8), so encoding unit stripes recovers its full generator
//!    matrix — with linearity itself verified, not assumed.
//! 2. **Decodability sweeps** ([`policy`]): for each family the exact
//!    theoretical decodable set is enumerated and compared against the
//!    rank of the surviving generator rows — all `C(n, ≤ r)` (and
//!    `C(n, r+1)`) patterns for the MDS codes, the guarantee plus the
//!    maximal-recoverability envelope for LRC, and the layout's own
//!    `can_recover_*` claims for the Approximate codes.
//! 3. **Schedule equivalence** ([`schedule`]): every compiled XOR /
//!    GF(2^8) recovery plan is executed *symbolically* and each step is
//!    proven equal to its target element; unsolved elements are proven
//!    genuinely unsolvable.
//!
//! The [`registry`] pins the roster of shipped constructions;
//! [`audit_all`] runs the whole battery and renders a report. The
//! negative path is covered too: [`registry::SabotagedCode`] zeroes a
//! parity shard — still linear, so only the rank sweeps can notice — and
//! the tests assert the audit fails on it.
//!
//! ```
//! let report = apec_audit::audit_all();
//! assert!(report.passed(), "{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plans;
pub mod policy;
pub mod probe;
pub mod registry;
pub mod schedule;

use apec_ec::{BoxedCode, EcError, ErasureCode};
use schedule::SpecRef;
use std::fmt;

pub use probe::{probe, ProbedGenerator, RowSpace};
pub use registry::{shipped_codes, SabotagedCode};

/// Why a generator could not be extracted.
#[derive(Debug)]
pub enum AuditError {
    /// The code reports inconsistent geometry (`n != k + r`, zero
    /// alignment, wrong shard count from `encode`…).
    BadGeometry {
        /// The code's `name()`.
        code: String,
        /// What was inconsistent.
        detail: String,
    },
    /// `encode` rejected a well-formed probe stripe.
    EncodeFailed {
        /// The code's `name()`.
        code: String,
        /// The underlying error.
        source: EcError,
    },
    /// The encoder failed a linearity axiom, so no generator matrix
    /// describes it and every algebraic statement about it is void.
    NotLinear {
        /// The code's `name()`.
        code: String,
        /// Which axiom broke, and where.
        detail: String,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::BadGeometry { code, detail } => {
                write!(f, "{code}: inconsistent geometry: {detail}")
            }
            AuditError::EncodeFailed { code, source } => {
                write!(f, "{code}: encode rejected a probe stripe: {source}")
            }
            AuditError::NotLinear { code, detail } => {
                write!(f, "{code}: encoder is not linear: {detail}")
            }
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::EncodeFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// At most this many failure messages are kept per code; the rest are
/// counted in [`CodeReport::suppressed_failures`].
const MAX_RECORDED_FAILURES: usize = 8;

/// The audit outcome for one code.
#[derive(Debug, Clone)]
pub struct CodeReport {
    /// The code's `name()`.
    pub code: String,
    /// Total nodes.
    pub total_nodes: usize,
    /// Data nodes.
    pub data_nodes: usize,
    /// Erasure patterns rank-checked.
    pub patterns_checked: usize,
    /// Compiled schedules symbolically verified.
    pub plans_verified: usize,
    /// Patterns inside the information-theoretic envelope that the
    /// construction nevertheless fails to decode (legal unless the code
    /// claims maximal recoverability, but worth watching).
    pub conservative_patterns: usize,
    /// Recorded failure messages (capped at `MAX_RECORDED_FAILURES`).
    pub failures: Vec<String>,
    /// Failures beyond the recording cap.
    pub suppressed_failures: usize,
}

impl CodeReport {
    /// A fresh report for `code`.
    pub fn new(name: String, code: &dyn ErasureCode) -> Self {
        CodeReport {
            code: name,
            total_nodes: code.total_nodes(),
            data_nodes: code.data_nodes(),
            patterns_checked: 0,
            plans_verified: 0,
            conservative_patterns: 0,
            failures: Vec::new(),
            suppressed_failures: 0,
        }
    }

    /// Records a failure (capped; excess is counted, not stored).
    pub fn fail(&mut self, message: String) {
        if self.failures.len() < MAX_RECORDED_FAILURES {
            self.failures.push(message);
        } else {
            self.suppressed_failures += 1;
        }
    }

    /// `true` when no check failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.suppressed_failures == 0
    }
}

/// One code plus the expectations it is audited against.
pub enum AuditTarget {
    /// An MDS code: decodable exactly up to `r` erasures.
    Mds {
        /// Parity count = erasure tolerance.
        r: usize,
        /// The code under audit.
        code: BoxedCode,
    },
    /// An XOR array code: MDS at column level, plus compiled-schedule
    /// verification against its [`apec_bitmatrix::XorCodeSpec`].
    Array {
        /// The code under audit.
        code: apec_xor::ArrayCode,
    },
    /// An LRC: guarantee + maximal-recoverability containment.
    Lrc {
        /// The code under audit.
        code: apec_lrc::Lrc,
    },
    /// An Approximate Code: tiered claims versus algebra, plus
    /// compiled-schedule verification against its engine spec.
    Approx {
        /// The code under audit.
        code: approx_code::ApproxCode,
    },
}

impl AuditTarget {
    /// The audited code as a plain [`ErasureCode`].
    pub fn as_code(&self) -> &dyn ErasureCode {
        match self {
            AuditTarget::Mds { code, .. } => code.as_ref(),
            AuditTarget::Array { code } => code,
            AuditTarget::Lrc { code } => code,
            AuditTarget::Approx { code } => code,
        }
    }
}

/// Runs the full audit battery against one target.
pub fn audit_target(target: &AuditTarget) -> CodeReport {
    let code = target.as_code();
    let mut report = CodeReport::new(code.name(), code);
    let gen = match probe::probe(code) {
        Ok(gen) => gen,
        Err(e) => {
            report.fail(e.to_string());
            return report;
        }
    };
    match target {
        AuditTarget::Mds { r, code } => {
            policy::check_mds(&gen, *r, &mut report);
            plans::check_plans(code.as_ref(), &gen, *r, *r, &mut report);
        }
        AuditTarget::Array { code } => {
            let tolerance = code.fault_tolerance();
            policy::check_mds(&gen, tolerance, &mut report);
            schedule::check_schedules(
                &SpecRef::Xor(code.spec()),
                &gen,
                tolerance + 1,
                &mut report,
            );
            plans::check_plans(code, &gen, tolerance + 1, tolerance, &mut report);
        }
        AuditTarget::Lrc { code } => {
            policy::check_lrc(&gen, code, &mut report);
            let tolerance = code.fault_tolerance();
            plans::check_plans(code, &gen, tolerance, tolerance, &mut report);
        }
        AuditTarget::Approx { code } => {
            policy::check_approx(&gen, code, &mut report);
            let spec = match &code.layout().engine {
                approx_code::builder::Engine::Xor(s) => SpecRef::Xor(s),
                approx_code::builder::Engine::Gf(s) => SpecRef::Gf(s),
            };
            schedule::check_schedules(
                &spec,
                &gen,
                code.important_fault_tolerance() + 1,
                &mut report,
            );
            // Tiered planners never refuse a pattern; they return partial
            // plans with proven-unsolvable remainders instead.
            plans::check_plans(
                code,
                &gen,
                code.important_fault_tolerance() + 1,
                usize::MAX,
                &mut report,
            );
        }
    }
    policy::check_update_pattern(&gen, code, &mut report);
    report
}

/// The audit outcome for a whole roster of codes.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// One report per audited code.
    pub codes: Vec<CodeReport>,
}

impl AuditReport {
    /// `true` when every code passed.
    pub fn passed(&self) -> bool {
        self.codes.iter().all(CodeReport::passed)
    }

    /// Human-readable summary, one block per code.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.codes {
            let verdict = if r.passed() { "PASS" } else { "FAIL" };
            out.push_str(&format!(
                "{verdict} {:<24} {} nodes ({} data)  {} patterns  {} schedules",
                r.code, r.total_nodes, r.data_nodes, r.patterns_checked, r.plans_verified
            ));
            if r.conservative_patterns > 0 {
                out.push_str(&format!(
                    "  [{} patterns inside the MR envelope undecoded]",
                    r.conservative_patterns
                ));
            }
            out.push('\n');
            for f in &r.failures {
                out.push_str(&format!("     - {f}\n"));
            }
            if r.suppressed_failures > 0 {
                out.push_str(&format!(
                    "     - … and {} more failures\n",
                    r.suppressed_failures
                ));
            }
        }
        let (pass, total) = (
            self.codes.iter().filter(|r| r.passed()).count(),
            self.codes.len(),
        );
        out.push_str(&format!("{pass}/{total} codes verified\n"));
        out
    }
}

/// Audits every shipped code construction.
pub fn audit_all() -> AuditReport {
    AuditReport {
        codes: registry::shipped_codes().iter().map(audit_target).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_rs::{MatrixKind, ReedSolomon};

    #[test]
    fn every_shipped_code_passes() {
        let report = audit_all();
        assert!(report.passed(), "audit failures:\n{}", report.render());
        for r in &report.codes {
            assert!(r.patterns_checked > 0, "{} checked nothing", r.code);
        }
        // The schedule verifier must actually have run for the
        // schedule-compiling families.
        assert!(
            report
                .codes
                .iter()
                .filter(|r| r.plans_verified > 0)
                .count()
                >= 9,
            "{}",
            report.render()
        );
        // And the repair-plan verifier covers *every* shipped code: all 13
        // emit native plans now, so all 13 must have verified plans.
        for r in &report.codes {
            assert!(r.plans_verified > 0, "{} verified no plans", r.code);
        }
    }

    #[test]
    fn sabotaged_generator_is_caught() {
        let inner = ReedSolomon::new(4, 2, MatrixKind::Vandermonde).unwrap();
        let target = AuditTarget::Mds {
            r: 2,
            code: Box::new(SabotagedCode::new(Box::new(inner))),
        };
        let report = audit_target(&target);
        assert!(
            !report.passed(),
            "a rank-deficient generator must fail the audit"
        );
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("MDS violation")),
            "failures: {:?}",
            report.failures
        );
        // The repair-plan verifier catches it independently: the inner
        // planner's coefficients disagree with the zeroed parity row. Run
        // it on a fresh report so the rank sweep's failures cannot crowd
        // the message out of the recording cap.
        let inner = ReedSolomon::new(4, 2, MatrixKind::Vandermonde).unwrap();
        let code = SabotagedCode::new(Box::new(inner));
        let gen = probe::probe(&code).unwrap();
        let mut plan_report = CodeReport::new(code.name(), &code);
        plans::check_plans(&code, &gen, 2, 2, &mut plan_report);
        assert!(
            plan_report
                .failures
                .iter()
                .any(|f| f.contains("algebraically wrong")),
            "failures: {:?}",
            plan_report.failures
        );
    }

    #[test]
    fn render_mentions_every_code_and_verdict() {
        let report = audit_all();
        let text = report.render();
        for r in &report.codes {
            assert!(text.contains(&r.code), "missing {} in:\n{text}", r.code);
        }
        assert!(text.contains("PASS"));
        assert!(text.contains("codes verified"));
    }
}
