//! Symbolic verification of compiled recovery schedules.
//!
//! The array codes and the Approximate layouts do not decode with matrix
//! inversion at run time — they compile *schedules*: lists of steps
//! `target = Σ cᵢ · sourceᵢ` emitted by the GF(2) / GF(2^8) solvers. A
//! schedule that merely produces plausible bytes would pass a round-trip
//! test on random data with probability well below certainty but still
//! hide coefficient errors; here we prove equivalence instead.
//!
//! Every element of a spec is assigned its *symbolic* value: the vector
//! of coefficients expressing it in the data bytes. Data elements are
//! unit vectors; parity elements are folded from their declared support
//! in encoding order. Three facts are then checked exhaustively:
//!
//! 1. the symbolic values agree with the [probed generator](crate::probe())
//!    — i.e. the shipped encode path implements the spec's equations;
//! 2. every step of every compiled schedule reads only surviving or
//!    already-rebuilt elements and its right-hand side *symbolically
//!    equals* its target;
//! 3. elements a schedule leaves unsolved really are unsolvable — their
//!    symbolic value lies outside the span of the surviving elements, so
//!    the solver is exact, not conservative.

use crate::policy::for_each_pattern;
use crate::probe::{ProbedGenerator, RowSpace};
use crate::CodeReport;
use apec_bitmatrix::XorCodeSpec;
use apec_gf::Gf8;
use approx_code::gfspec::GfSpec;

/// A view over the two spec dialects the workspace compiles schedules
/// from: GF(2) XOR specs and GF(2^8) coefficient specs.
pub enum SpecRef<'a> {
    /// An XOR array-code spec (EVENODD, RDP, STAR, TIP-like, APPR.STAR…).
    Xor(&'a XorCodeSpec),
    /// A GF(2^8) spec (APPR.RS / APPR.LRC layouts).
    Gf(&'a GfSpec),
}

/// One normalised schedule step: `target = Σ coeff · source`.
struct Step {
    target: usize,
    sources: Vec<(u8, usize)>,
}

impl SpecRef<'_> {
    fn n_cols(&self) -> usize {
        match self {
            SpecRef::Xor(s) => s.n_cols,
            SpecRef::Gf(s) => s.n_cols,
        }
    }

    fn total_elements(&self) -> usize {
        match self {
            SpecRef::Xor(s) => s.total_elements(),
            SpecRef::Gf(s) => s.total_elements(),
        }
    }

    fn column_elements(&self, col: usize) -> Vec<usize> {
        match self {
            SpecRef::Xor(s) => s.column_elements(col),
            SpecRef::Gf(s) => s.column_elements(col),
        }
    }

    fn erase_columns(&self, cols: &[usize]) -> Vec<usize> {
        match self {
            SpecRef::Xor(s) => s.erase_columns(cols),
            SpecRef::Gf(s) => s.erase_columns(cols),
        }
    }

    fn data_elements(&self) -> &[usize] {
        match self {
            SpecRef::Xor(s) => &s.data_elements,
            SpecRef::Gf(s) => &s.data_elements,
        }
    }

    /// Parity equations as `(parity element, [(coeff, source)…])`, in
    /// encoding order.
    fn supports(&self) -> Vec<(usize, Vec<(u8, usize)>)> {
        match self {
            SpecRef::Xor(s) => s
                .parity_elements
                .iter()
                .zip(&s.parity_support)
                .map(|(&p, sup)| (p, sup.iter().map(|&e| (1u8, e)).collect()))
                .collect(),
            SpecRef::Gf(s) => s
                .parity_elements
                .iter()
                .zip(&s.parity_support)
                .map(|(&p, sup)| (p, sup.clone()))
                .collect(),
        }
    }

    fn partial_plan(&self, erased: &[usize]) -> Result<(Vec<Step>, Vec<usize>), String> {
        match self {
            SpecRef::Xor(s) => s
                .partial_recovery_plan(erased)
                .map(|(plan, unsolved)| {
                    let steps = plan
                        .steps
                        .into_iter()
                        .map(|st| Step {
                            target: st.target,
                            sources: st.sources.into_iter().map(|e| (1u8, e)).collect(),
                        })
                        .collect();
                    (steps, unsolved)
                })
                .map_err(|e| e.to_string()),
            SpecRef::Gf(s) => s
                .partial_recovery_plan(erased)
                .map(|(plan, unsolved)| {
                    let steps = plan
                        .steps
                        .into_iter()
                        .map(|st| Step {
                            target: st.target,
                            sources: st.sources,
                        })
                        .collect();
                    (steps, unsolved)
                })
                .map_err(|e| e.to_string()),
        }
    }
}

/// Symbolic element values plus the element → (node, offset) map.
struct Symbols {
    /// Per element, its coefficient vector over the data bytes.
    vecs: Vec<Vec<Gf8>>,
    /// Per element, `(node, byte offset within the node's shard)`.
    pos: Vec<(usize, usize)>,
}

/// Folds the spec's parity equations into symbolic element values and
/// cross-checks them against the probed generator.
fn build_symbols(spec: &SpecRef<'_>, gen: &ProbedGenerator, report: &mut CodeReport) -> Option<Symbols> {
    let total = spec.total_elements();
    let cols = gen.cols();
    if spec.n_cols() != gen.total_nodes {
        report.fail(format!(
            "spec has {} columns but the code exposes {} nodes",
            spec.n_cols(),
            gen.total_nodes
        ));
        return None;
    }

    let mut pos = vec![(usize::MAX, usize::MAX); total];
    for node in 0..spec.n_cols() {
        for (offset, e) in spec.column_elements(node).into_iter().enumerate() {
            pos[e] = (node, offset);
        }
    }

    // Data elements must be exactly the elements of the data nodes; the
    // probe's column space is defined by that systematic layout.
    let mut vecs: Vec<Option<Vec<Gf8>>> = vec![None; total];
    for &e in spec.data_elements() {
        let (node, offset) = pos[e];
        if node >= gen.data_nodes {
            report.fail(format!(
                "spec data element {e} lives on node {node}, which the code \
                 reports as a parity node"
            ));
            return None;
        }
        let mut unit = vec![Gf8::ZERO; cols];
        unit[node * gen.shard_len + offset] = Gf8::ONE;
        vecs[e] = Some(unit);
    }

    for (p, support) in spec.supports() {
        let mut acc = vec![Gf8::ZERO; cols];
        for (c, src) in support {
            let Some(v) = vecs[src].as_ref() else {
                report.fail(format!(
                    "parity element {p} references element {src} before it is \
                     defined — encoding order is broken"
                ));
                return None;
            };
            let c = Gf8::new(c);
            for (a, &b) in acc.iter_mut().zip(v) {
                *a += c * b;
            }
        }
        if vecs[p].is_some() {
            report.fail(format!("element {p} is defined twice by the spec"));
            return None;
        }
        vecs[p] = Some(acc);
    }

    let mut out = Vec::with_capacity(total);
    for (e, v) in vecs.into_iter().enumerate() {
        let Some(v) = v else {
            report.fail(format!("element {e} is neither data nor parity"));
            return None;
        };
        let (node, offset) = pos[e];
        if gen.row(node, offset) != v.as_slice() {
            report.fail(format!(
                "encode path disagrees with the spec at element {e} \
                 (node {node}, byte {offset}): the probed generator row does \
                 not match the folded parity equations"
            ));
            return None;
        }
        out.push(v);
    }
    Some(Symbols { vecs: out, pos })
}

/// Verifies every compiled schedule for every column-erasure pattern of
/// size `1..=max_erasures` against the spec's algebra.
pub fn check_schedules(
    spec: &SpecRef<'_>,
    gen: &ProbedGenerator,
    max_erasures: usize,
    report: &mut CodeReport,
) {
    let Some(sym) = build_symbols(spec, gen, report) else {
        return;
    };
    let total = spec.total_elements();
    let n = spec.n_cols();

    for size in 1..=max_erasures.min(n) {
        for_each_pattern(n, size, |cols| {
            let erased = spec.erase_columns(cols);
            let (steps, unsolved) = match spec.partial_plan(&erased) {
                Ok(v) => v,
                Err(e) => {
                    report.fail(format!("solver refused pattern {cols:?}: {e}"));
                    return;
                }
            };
            report.plans_verified += 1;

            let mut known = vec![true; total];
            for &e in &erased {
                known[e] = false;
            }

            for step in &steps {
                if known[step.target] {
                    report.fail(format!(
                        "pattern {cols:?}: step rebuilds element {} which was \
                         never erased (or twice)",
                        step.target
                    ));
                    return;
                }
                let mut acc = vec![Gf8::ZERO; gen.cols()];
                for &(c, src) in &step.sources {
                    if !known[src] {
                        report.fail(format!(
                            "pattern {cols:?}: step for element {} reads erased \
                             element {src} before it is rebuilt",
                            step.target
                        ));
                        return;
                    }
                    let c = Gf8::new(c);
                    for (a, &b) in acc.iter_mut().zip(&sym.vecs[src]) {
                        *a += c * b;
                    }
                }
                if acc != sym.vecs[step.target] {
                    let (node, offset) = sym.pos[step.target];
                    report.fail(format!(
                        "pattern {cols:?}: schedule step for element {} \
                         (node {node}, byte {offset}) is algebraically wrong — \
                         its sources do not sum to the element's value",
                        step.target
                    ));
                    return;
                }
                known[step.target] = true;
            }

            // Everything erased is now either rebuilt or declared
            // unsolved, with no overlap.
            for &e in &erased {
                let solved = known[e];
                let declared_unsolved = unsolved.contains(&e);
                if solved == declared_unsolved {
                    report.fail(format!(
                        "pattern {cols:?}: element {e} is {} but the plan \
                         declares it {}",
                        if solved { "rebuilt" } else { "not rebuilt" },
                        if declared_unsolved { "unsolved" } else { "solved" },
                    ));
                    return;
                }
            }

            // Unsolved elements must be genuinely out of reach: their
            // symbolic value outside the span of surviving elements.
            if !unsolved.is_empty() {
                let mut span = RowSpace::new(gen.cols());
                for e in 0..total {
                    if !erased.contains(&e) {
                        span.insert(&sym.vecs[e]);
                    }
                }
                for &e in &unsolved {
                    if span.contains(&sym.vecs[e]) {
                        report.fail(format!(
                            "pattern {cols:?}: element {e} is recoverable from \
                             the survivors but the solver left it unsolved — \
                             the schedule compiler is incomplete"
                        ));
                        return;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::probe;
    use apec_ec::ErasureCode;

    #[test]
    fn evenodd_schedules_verify() {
        let code = apec_xor::evenodd(5, 5).unwrap();
        let gen = probe(&code).unwrap();
        let mut report = CodeReport::new(code.name(), &code);
        let spec = SpecRef::Xor(code.spec());
        check_schedules(&spec, &gen, code.fault_tolerance() + 1, &mut report);
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.plans_verified > 0);
    }

    #[test]
    fn tampered_spec_is_caught() {
        let code = apec_xor::evenodd(5, 4).unwrap();
        let gen = probe(&code).unwrap();
        // Drop one element from one parity's support: the folded
        // equations no longer match the shipped encoder.
        let mut spec = code.spec().clone();
        spec.parity_support[0].pop();
        let mut report = CodeReport::new(code.name(), &code);
        check_schedules(&SpecRef::Xor(&spec), &gen, 1, &mut report);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("disagrees with the spec")),
            "failures: {:?}",
            report.failures
        );
    }
}
