//! Symbolic verification of [`RepairPlan`]s against the probed generator.
//!
//! [`crate::schedule`] proves the *compiled* schedules of the spec-driven
//! families; this module closes the same loop one layer up, at the trait
//! boundary every consumer actually uses: [`ErasureCode::plan_repair`]. For
//! every erasure pattern in budget it requests the full repair plan plus one
//! *partial-decode* plan per erased node (`wanted = [that node]`) and proves,
//! step by step, that the plan rebuilds exactly what it claims:
//!
//! 1. every step reads only elements the plan's read set fetches or targets
//!    of earlier steps — i.e. the executor could really run it;
//! 2. each step's right-hand side is *symbolically equal* to its target
//!    element under the probed generator, so a wrong coefficient anywhere
//!    (planner, decode-matrix cache, schedule lift) fails the audit even if
//!    it would round-trip most random stripes;
//! 3. every wanted element is either rebuilt or declared unsolved, and the
//!    unsolved ones are proven outside the span of the surviving shards —
//!    tiered plans give up exactly what is information-theoretically gone;
//! 4. the plan is *native*: an opaque fallback plan means the code never
//!    shipped a real planner, which is itself a finding.

use crate::policy::for_each_pattern;
use crate::probe::ProbedGenerator;
use crate::CodeReport;
use apec_ec::{ErasureCode, RepairPlan};
use apec_gf::Gf8;
use std::collections::{HashMap, HashSet};

/// Verifies every repair plan the code emits for every erasure pattern of
/// `1..=max_erasures` nodes: the full plan (`wanted = erased`) and each
/// single-node partial plan.
///
/// Plans must succeed for patterns of at most `strict_tolerance` erasures;
/// beyond that an error is accepted only when the pattern genuinely does not
/// decode (survivor rows do not span the data). Pass `usize::MAX` for tiered
/// codes whose planner never refuses a valid pattern.
pub fn check_plans(
    code: &dyn ErasureCode,
    gen: &ProbedGenerator,
    max_erasures: usize,
    strict_tolerance: usize,
    report: &mut CodeReport,
) {
    let n = gen.total_nodes;
    for size in 1..=max_erasures.min(n) {
        for_each_pattern(n, size, |erased| {
            check_pattern(code, gen, erased, erased, strict_tolerance, report);
            if erased.len() > 1 {
                for &w in erased {
                    check_pattern(code, gen, erased, &[w], strict_tolerance, report);
                }
            }
        });
    }
}

fn check_pattern(
    code: &dyn ErasureCode,
    gen: &ProbedGenerator,
    erased: &[usize],
    wanted: &[usize],
    strict_tolerance: usize,
    report: &mut CodeReport,
) {
    let plan = match code.plan_repair(erased, wanted) {
        Ok(p) => p,
        Err(e) => {
            if erased.len() <= strict_tolerance {
                report.fail(format!(
                    "plan_repair({erased:?}, wanted {wanted:?}) refused an \
                     in-tolerance pattern: {e}"
                ));
            } else if gen.survivor_space(erased).is_full() {
                report.fail(format!(
                    "plan_repair({erased:?}) refused a decodable pattern: {e}"
                ));
            }
            return;
        }
    };
    if verify_plan(&plan, gen, erased, wanted, report) {
        report.plans_verified += 1;
    }
}

/// Proves one plan correct; returns `true` when every check passed.
fn verify_plan(
    plan: &RepairPlan,
    gen: &ProbedGenerator,
    erased: &[usize],
    wanted: &[usize],
    report: &mut CodeReport,
) -> bool {
    let ctx = format!("plan({erased:?}, wanted {wanted:?})");
    if plan.is_opaque() {
        report.fail(format!(
            "{ctx}: opaque fallback plan — the code ships no native planner"
        ));
        return false;
    }
    let eps = plan.elements_per_shard();
    if plan.total_nodes() != gen.total_nodes || eps != gen.shard_len {
        report.fail(format!(
            "{ctx}: geometry mismatch — plan says {} nodes x {} elements, the \
             probe found {} x {}",
            plan.total_nodes(),
            eps,
            gen.total_nodes,
            gen.shard_len
        ));
        return false;
    }
    if plan.erased() != erased || plan.wanted() != wanted {
        report.fail(format!(
            "{ctx}: plan reports erased {:?} / wanted {:?}",
            plan.erased(),
            plan.wanted()
        ));
        return false;
    }

    // The read set the executor will fetch; steps may source nothing else
    // from the survivors.
    let mut readable: HashSet<usize> = HashSet::new();
    for r in plan.reads() {
        if erased.contains(&r.node) {
            report.fail(format!("{ctx}: plan reads erased node {}", r.node));
            return false;
        }
        for &idx in &r.elements {
            if idx >= eps {
                report.fail(format!(
                    "{ctx}: read of node {} element {idx} is out of range",
                    r.node
                ));
                return false;
            }
            readable.insert(r.node * eps + idx);
        }
    }

    // Symbolic execution: each element's value is its coefficient vector
    // over the data bytes, exactly as the probe recovered it.
    let sym_of = |e: usize| gen.row(e / eps, e % eps);
    let mut built: HashMap<usize, Vec<Gf8>> = HashMap::new();
    for step in plan.steps() {
        let t_node = step.target / eps;
        if !erased.contains(&t_node) {
            report.fail(format!(
                "{ctx}: step rebuilds element {} on surviving node {t_node}",
                step.target
            ));
            return false;
        }
        if built.contains_key(&step.target) {
            report.fail(format!(
                "{ctx}: element {} is rebuilt twice",
                step.target
            ));
            return false;
        }
        let mut acc = vec![Gf8::ZERO; gen.cols()];
        for &(c, src) in &step.sources {
            let value: &[Gf8] = if let Some(v) = built.get(&src) {
                v
            } else if erased.contains(&(src / eps)) {
                report.fail(format!(
                    "{ctx}: step for element {} reads erased element {src} \
                     before it is rebuilt",
                    step.target
                ));
                return false;
            } else if readable.contains(&src) {
                sym_of(src)
            } else {
                report.fail(format!(
                    "{ctx}: step for element {} reads element {src}, which the \
                     plan's read set never fetches",
                    step.target
                ));
                return false;
            };
            let c = Gf8::new(c);
            for (a, &b) in acc.iter_mut().zip(value) {
                *a += c * b;
            }
        }
        if acc != sym_of(step.target) {
            report.fail(format!(
                "{ctx}: step for element {} (node {t_node}, byte {}) is \
                 algebraically wrong — its sources do not sum to the element's \
                 value under the probed generator",
                step.target,
                step.target % eps
            ));
            return false;
        }
        built.insert(step.target, acc);
    }

    // Coverage: every wanted element rebuilt or declared unsolved, never
    // both; unsolved elements proven genuinely unreachable.
    let unsolved: HashSet<usize> = plan.unsolved().iter().copied().collect();
    for &w in wanted {
        for e in w * eps..(w + 1) * eps {
            match (built.contains_key(&e), unsolved.contains(&e)) {
                (false, false) => {
                    report.fail(format!(
                        "{ctx}: wanted element {e} is neither rebuilt nor \
                         declared unsolved"
                    ));
                    return false;
                }
                (true, true) => {
                    report.fail(format!(
                        "{ctx}: element {e} is rebuilt yet declared unsolved"
                    ));
                    return false;
                }
                _ => {}
            }
        }
    }
    if !unsolved.is_empty() {
        let span = gen.survivor_space(erased);
        for &e in &unsolved {
            if span.contains(sym_of(e)) {
                report.fail(format!(
                    "{ctx}: element {e} is recoverable from the survivors but \
                     the plan gave it up — the planner is incomplete"
                ));
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::probe;
    use apec_ec::EcError;

    #[test]
    fn rs_plans_verify_including_partials() {
        let code = apec_rs::ReedSolomon::new(4, 2, apec_rs::MatrixKind::Vandermonde).unwrap();
        let gen = probe(&code).unwrap();
        let mut report = CodeReport::new(code.name(), &code);
        check_plans(&code, &gen, 2, 2, &mut report);
        assert!(report.passed(), "failures: {:?}", report.failures);
        // C(6,1) full + C(6,2) * (1 full + 2 partials).
        assert_eq!(report.plans_verified, 6 + 15 * 3);
    }

    #[test]
    fn array_plans_verify_at_element_granularity() {
        let code = apec_xor::evenodd(5, 4).unwrap();
        let gen = probe(&code).unwrap();
        let mut report = CodeReport::new(code.name(), &code);
        check_plans(&code, &gen, code.fault_tolerance(), code.fault_tolerance(), &mut report);
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.plans_verified > 0);
    }

    #[test]
    fn opaque_fallback_plans_are_findings() {
        // A code without a native planner inherits the opaque default; the
        // audit must flag it rather than silently skipping verification.
        struct NoPlanner(apec_rs::ReedSolomon);
        impl ErasureCode for NoPlanner {
            fn name(&self) -> String {
                "no-planner-test-double".into()
            }
            fn data_nodes(&self) -> usize {
                self.0.data_nodes()
            }
            fn parity_nodes(&self) -> usize {
                self.0.parity_nodes()
            }
            fn fault_tolerance(&self) -> usize {
                self.0.fault_tolerance()
            }
            fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
                self.0.encode(data)
            }
            fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
                self.0.reconstruct(shards)
            }
        }
        let code = NoPlanner(apec_rs::ReedSolomon::new(3, 2, apec_rs::MatrixKind::Vandermonde).unwrap());
        let gen = probe(&code).unwrap();
        let mut report = CodeReport::new(code.name(), &code);
        check_plans(&code, &gen, 1, 1, &mut report);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("opaque")),
            "failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn doctored_steps_fail_the_algebra_check() {
        // Take a real plan, flip one coefficient, and re-verify manually.
        let code = apec_rs::ReedSolomon::new(4, 2, apec_rs::MatrixKind::Vandermonde).unwrap();
        let gen = probe(&code).unwrap();
        let plan = code.plan_repair(&[0], &[0]).unwrap();
        let mut steps: Vec<apec_ec::PlanStep> = plan.steps().to_vec();
        steps[0].sources[0].0 ^= 0x17; // raw-xor-ok: flips one test coefficient, not shard bytes
        let doctored =
            RepairPlan::from_steps(6, 1, &[0], &[0], steps, &[]).unwrap();
        let mut report = CodeReport::new(code.name(), &code);
        assert!(!verify_plan(&doctored, &gen, &[0], &[0], &mut report));
        assert!(
            report.failures.iter().any(|f| f.contains("algebraically wrong")),
            "failures: {:?}",
            report.failures
        );
    }
}
