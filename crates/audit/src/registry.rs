//! The roster of shipped code constructions the auditor certifies.
//!
//! Parameters are chosen small enough that the exhaustive pattern sweeps
//! stay in the low hundreds per code, yet large enough to exercise every
//! structural feature: shortened array columns, unbalanced LRC groups,
//! both Approximate engines (GF(2^8) and XOR), and both important-data
//! structures.

use crate::AuditTarget;
use apec_ec::{BoxedCode, EcError, ErasureCode, UpdatePattern};
use apec_rs::{MatrixKind, ReedSolomon};
use approx_code::{ApproxCode, BaseFamily, Structure};

/// Every code family the workspace ships, in audit order.
///
/// # Panics
/// Panics only if a shipped constructor rejects its own documented
/// parameters — which is itself an audit failure worth crashing on.
pub fn shipped_codes() -> Vec<AuditTarget> {
    let rs = |k, r, kind: MatrixKind| -> AuditTarget {
        let code = ReedSolomon::new(k, r, kind).expect("documented RS parameters");
        AuditTarget::Mds {
            r,
            code: Box::new(code),
        }
    };
    let appr = |family, k, r, g, h, structure| -> AuditTarget {
        AuditTarget::Approx {
            code: ApproxCode::build_named(family, k, r, g, h, structure)
                .expect("documented Approximate-Code parameters"),
        }
    };
    vec![
        rs(4, 2, MatrixKind::Vandermonde),
        rs(6, 3, MatrixKind::Cauchy),
        AuditTarget::Lrc {
            code: apec_lrc::Lrc::new(6, 2, 2).expect("documented LRC parameters"),
        },
        // k < l would be rejected; k % l != 0 exercises unbalanced groups.
        AuditTarget::Lrc {
            code: apec_lrc::Lrc::new(5, 2, 2).expect("documented LRC parameters"),
        },
        AuditTarget::Array {
            code: apec_xor::evenodd(5, 5).expect("documented EVENODD parameters"),
        },
        // Shortened: k = 3 data columns over the p = 5 geometry.
        AuditTarget::Array {
            code: apec_xor::evenodd(5, 3).expect("documented EVENODD parameters"),
        },
        AuditTarget::Array {
            code: apec_xor::rdp(5, 4).expect("documented RDP parameters"),
        },
        AuditTarget::Array {
            code: apec_xor::star(5, 5).expect("documented STAR parameters"),
        },
        AuditTarget::Array {
            code: apec_xor::tip_like(5, 5).expect("documented TIP parameters"),
        },
        appr(BaseFamily::Rs, 3, 1, 1, 2, Structure::Uneven),
        appr(BaseFamily::Lrc, 4, 2, 1, 2, Structure::Even),
        appr(BaseFamily::Star, 3, 1, 1, 2, Structure::Uneven),
        appr(BaseFamily::Tip, 3, 1, 2, 2, Structure::Even),
    ]
}

/// Wraps a code so its last parity shard is silently zeroed: the result
/// is still perfectly linear (the probe's linearity axioms hold), but
/// its generator has lost a row of rank — exactly the class of silent
/// construction bug the rank sweeps exist to catch. Used by the
/// negative tests to prove the auditor actually fails.
pub struct SabotagedCode {
    inner: BoxedCode,
}

impl SabotagedCode {
    /// Sabotages `inner`.
    pub fn new(inner: BoxedCode) -> Self {
        SabotagedCode { inner }
    }
}

impl ErasureCode for SabotagedCode {
    fn name(&self) -> String {
        format!("sabotaged({})", self.inner.name())
    }

    fn data_nodes(&self) -> usize {
        self.inner.data_nodes()
    }

    fn parity_nodes(&self) -> usize {
        self.inner.parity_nodes()
    }

    fn fault_tolerance(&self) -> usize {
        self.inner.fault_tolerance()
    }

    fn shard_alignment(&self) -> usize {
        self.inner.shard_alignment()
    }

    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let mut parity = self.inner.encode(data)?;
        if let Some(last) = parity.last_mut() {
            last.fill(0);
        }
        Ok(parity)
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        self.inner.reconstruct(shards)
    }

    fn plan_repair(
        &self,
        erased: &[usize],
        wanted: &[usize],
    ) -> Result<apec_ec::RepairPlan, EcError> {
        // Delegate to the inner planner: its coefficients describe the
        // *unsabotaged* generator, so the symbolic plan check must notice
        // the mismatch against the probed (zeroed-parity) matrix.
        self.inner.plan_repair(erased, wanted)
    }

    fn update_pattern(&self) -> UpdatePattern {
        self.inner.update_pattern()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_every_family() {
        let codes = shipped_codes();
        let names: Vec<String> = codes.iter().map(|t| t.as_code().name()).collect();
        for family in ["RS(", "CRS(", "LRC(", "EVENODD", "RDP", "STAR", "TIP"] {
            assert!(
                names.iter().any(|n| n.contains(family)),
                "no {family} code in the roster: {names:?}"
            );
        }
        assert!(
            names.iter().filter(|n| n.contains("APPR")).count() >= 4,
            "expected all four Approximate families: {names:?}"
        );
    }
}
