//! Theoretical decodable sets, checked exhaustively.
//!
//! Each code family promises a precise set of survivable erasure
//! patterns. The auditor enumerates every node-erasure pattern up to (and
//! one past) the relevant bound and compares the *algebraic* truth — rank
//! of the surviving generator rows — against that promise:
//!
//! * **MDS** (RS, Cauchy-RS, EVENODD, RDP, STAR, TIP-like): every
//!   pattern of at most `r` erasures decodes; every pattern of `r + 1`
//!   does not. Nothing in between exists.
//! * **LRC(k, l, g)**: every pattern up to the advertised
//!   `fault_tolerance()` decodes, and no pattern violating the
//!   information-theoretic counting bound (each group's erased data can
//!   draw on at most its one surviving local parity, the rest must come
//!   from surviving globals) decodes — i.e. the decodable set is
//!   contained in the maximally-recoverable set.
//! * **Approximate Code**: the code's own `can_recover_all` /
//!   `can_recover_important` claims must coincide with the algebra, and
//!   the advertised all-data / important-data tolerances must hold.

use crate::probe::ProbedGenerator;
use crate::CodeReport;
use apec_lrc::Lrc;
use approx_code::ApproxCode;

/// Calls `f` with every sorted `size`-subset of `0..n`.
pub fn for_each_pattern(n: usize, size: usize, mut f: impl FnMut(&[usize])) {
    if size > n {
        return;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        f(&idx);
        // Advance the rightmost index that still has room.
        let mut i = size;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - size {
                break;
            }
        }
        if idx[i] == i + n - size {
            return;
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of `size`-subsets of `0..n` (for reporting).
pub fn pattern_count(n: usize, size: usize) -> usize {
    if size > n {
        return 0;
    }
    let mut c = 1usize;
    for i in 0..size {
        c = c * (n - i) / (i + 1);
    }
    c
}

/// MDS audit: decodable exactly when at most `r` nodes are erased.
pub fn check_mds(gen: &ProbedGenerator, r: usize, report: &mut CodeReport) {
    let n = gen.total_nodes;
    for size in 1..=r {
        for_each_pattern(n, size, |erased| {
            report.patterns_checked += 1;
            if !gen.survivor_space(erased).is_full() {
                report.fail(format!(
                    "MDS violation: {size} erasures {erased:?} are within tolerance \
                     {r} but the surviving rows do not span the data"
                ));
            }
        });
    }
    // One past the bound: an MDS code loses data on ANY r+1 erasures.
    for_each_pattern(n, r + 1, |erased| {
        report.patterns_checked += 1;
        if gen.survivor_space(erased).is_full() {
            report.fail(format!(
                "MDS violation: {erased:?} erases {} > r = {r} nodes yet still \
                 decodes — the code is storing redundant parity",
                r + 1
            ));
        }
    });
}

/// LRC audit: guarantee + maximal-recoverability containment.
pub fn check_lrc(gen: &ProbedGenerator, lrc: &Lrc, report: &mut CodeReport) {
    use apec_ec::ErasureCode;
    let n = gen.total_nodes;
    let k = lrc.data_nodes();
    let l = lrc.local_groups();
    let g = lrc.global_parities();
    let tolerance = lrc.fault_tolerance();

    // The counting bound: with `d_i` data erasures in group `i`, a
    // surviving local parity contributes one equation to its own group
    // and surviving globals one equation each, shared. Any pattern
    // needing more equations than exist is information-theoretically
    // dead, whatever the coefficients.
    let mr_possible = |erased: &[usize]| -> bool {
        let mut data_erased = vec![0usize; l];
        let mut local_lost = vec![false; l];
        let mut globals_lost = 0usize;
        for &e in erased {
            if e < k {
                data_erased[lrc.group_of(e)] += 1;
            } else if let Some(grp) = (0..l).find(|&i| lrc.local_parity_index(i) == e) {
                local_lost[grp] = true;
            } else {
                globals_lost += 1;
            }
        }
        let globals_avail = g - globals_lost;
        let need: usize = (0..l)
            .map(|i| {
                let local = usize::from(!local_lost[i]);
                data_erased[i].saturating_sub(local)
            })
            .sum();
        need <= globals_avail
    };

    for size in 1..=(l + g + 1).min(n) {
        for_each_pattern(n, size, |erased| {
            report.patterns_checked += 1;
            let decodable = gen.survivor_space(erased).is_full();
            if size <= tolerance && !decodable {
                report.fail(format!(
                    "LRC guarantee violation: {erased:?} is within the advertised \
                     tolerance {tolerance} but does not decode"
                ));
            }
            if decodable && !mr_possible(erased) {
                report.fail(format!(
                    "LRC impossibility violation: {erased:?} breaks the counting \
                     bound yet the rank check says it decodes — the probe or the \
                     construction is inconsistent"
                ));
            }
            if !decodable && mr_possible(erased) {
                // Inside the MR envelope but not achieved by this
                // construction: legal (the code is not claimed maximally
                // recoverable), but worth surfacing.
                report.conservative_patterns += 1;
            }
        });
    }
}

/// Update-pattern audit: the advertised `parity_writes` must equal the
/// average number of parity elements with a nonzero coefficient in a data
/// element's generator column — a data-element write dirties exactly the
/// parity elements whose equations mention it, so anything else misprices
/// the paper's single-write-overhead metric.
pub fn check_update_pattern(
    gen: &ProbedGenerator,
    code: &dyn apec_ec::ErasureCode,
    report: &mut CodeReport,
) {
    let cols = gen.cols();
    let mut touched = 0usize;
    for node in gen.data_nodes..gen.total_nodes {
        for offset in 0..gen.shard_len {
            touched += gen.row(node, offset).iter().filter(|c| !c.is_zero()).count();
        }
    }
    let algebraic = touched as f64 / cols as f64;
    let claimed = code.update_pattern().parity_writes;
    if (claimed - algebraic).abs() > 1e-9 {
        report.fail(format!(
            "update_pattern().parity_writes = {claimed} but the probed \
             generator has {algebraic} nonzero parity coefficients per data \
             column"
        ));
    }
}

/// Approximate-Code audit: the layout's own claims versus the algebra.
pub fn check_approx(gen: &ProbedGenerator, code: &ApproxCode, report: &mut CodeReport) {
    use apec_ec::ErasureCode;
    let n = gen.total_nodes;
    let l = gen.shard_len;
    let all_tolerance = code.fault_tolerance();
    let imp_tolerance = code.important_fault_tolerance();

    // Column indices of the important data bytes, straight from the
    // layout's own byte-range map.
    let important_cols: Vec<usize> = (0..gen.data_nodes)
        .flat_map(|d| {
            code.important_ranges(d, l)
                .into_iter()
                .flat_map(move |range| range.map(move |o| d * l + o))
        })
        .collect();
    if important_cols.is_empty() {
        report.fail("layout reports no important data bytes at all".into());
        return;
    }

    for size in 1..=(imp_tolerance + 1).min(n) {
        for_each_pattern(n, size, |erased| {
            report.patterns_checked += 1;
            let space = gen.survivor_space(erased);
            let alg_all = space.is_full();
            let alg_imp = important_cols.iter().all(|&c| space.contains_unit(c));

            let claim_all = code.can_recover_all(erased);
            let claim_imp = code.can_recover_important(erased);

            if claim_all != alg_all {
                report.fail(format!(
                    "can_recover_all({erased:?}) = {claim_all} but the generator \
                     rank says {alg_all}"
                ));
            }
            if claim_imp != alg_imp {
                report.fail(format!(
                    "can_recover_important({erased:?}) = {claim_imp} but unit-vector \
                     membership says {alg_imp}"
                ));
            }
            if size <= all_tolerance && !alg_all {
                report.fail(format!(
                    "tolerance violation: {erased:?} is within the advertised \
                     all-data tolerance {all_tolerance} but loses data"
                ));
            }
            if size <= imp_tolerance && !alg_imp {
                report.fail(format!(
                    "tolerance violation: {erased:?} is within the advertised \
                     important-data tolerance {imp_tolerance} but loses important bytes"
                ));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_enumeration_is_exhaustive_and_sorted() {
        let mut seen = Vec::new();
        for_each_pattern(5, 3, |p| {
            assert!(p.windows(2).all(|w| w[0] < w[1]));
            seen.push(p.to_vec());
        });
        assert_eq!(seen.len(), pattern_count(5, 3));
        assert_eq!(seen.len(), 10);
        seen.dedup();
        assert_eq!(seen.len(), 10, "no duplicates");
    }

    #[test]
    fn update_pattern_overclaims_are_caught() {
        use crate::registry::SabotagedCode;
        // Zeroing a parity row halves the true write fan-out of RS(4,2),
        // but the wrapper still advertises the inner code's r = 2.
        let inner = apec_rs::ReedSolomon::new(4, 2, apec_rs::MatrixKind::Vandermonde).unwrap();
        let code = SabotagedCode::new(Box::new(inner));
        let gen = crate::probe::probe(&code).unwrap();
        let mut report = crate::CodeReport::new(apec_ec::ErasureCode::name(&code), &code);
        check_update_pattern(&gen, &code, &mut report);
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("parity_writes")),
            "failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn pattern_edge_cases() {
        let mut count = 0;
        for_each_pattern(4, 4, |_| count += 1);
        assert_eq!(count, 1);
        for_each_pattern(3, 4, |_| panic!("size > n yields nothing"));
        assert_eq!(pattern_count(3, 4), 0);
        assert_eq!(pattern_count(10, 2), 45);
    }
}
