//! Black-box generator extraction.
//!
//! Every code in the workspace is a *linear* map over GF(2^8) applied
//! byte-wise across shards: XOR array codes use coefficients in {0, 1},
//! RS/LRC use arbitrary field elements, and the Approximate layouts merge
//! both. That means the whole encoder is characterised by one generator
//! matrix, and we can extract it without looking at any implementation
//! detail: encode each unit stripe (a single 1-byte in an otherwise
//! all-zero stripe) and read the parity bytes it produces.
//!
//! The extraction is only honest if the encoder really is linear, so
//! [`probe`] also spot-checks the two axioms the unit probes cannot see:
//! the zero stripe must encode to zero parity (no affine offset), and
//! random stripes must match the matrix prediction (additivity and
//! GF-scaling at once).

use crate::AuditError;
use apec_ec::ErasureCode;
use apec_gf::Gf8;

/// A generator matrix recovered from an [`ErasureCode`] by probing.
///
/// Shards are probed at `shard_len = code.shard_alignment()` bytes, the
/// smallest stripe the code accepts, so every array-code *element* is
/// exactly one byte and element indices coincide with byte positions.
#[derive(Debug, Clone)]
pub struct ProbedGenerator {
    /// Total nodes `n = k + r`.
    pub total_nodes: usize,
    /// Data nodes `k`; shards `0..k` are data, `k..n` parity.
    pub data_nodes: usize,
    /// Bytes per shard used for the probe (the code's alignment).
    pub shard_len: usize,
    /// `(n · shard_len)` rows of `(k · shard_len)` coefficients each.
    /// Row `node · shard_len + offset` expresses that output byte as a
    /// GF(2^8) combination of the data bytes; the top `k · shard_len`
    /// rows are the identity by construction (systematic layout).
    pub rows: Vec<Vec<Gf8>>,
}

impl ProbedGenerator {
    /// Number of data-byte columns (`k · shard_len`).
    pub fn cols(&self) -> usize {
        self.data_nodes * self.shard_len
    }

    /// The row for byte `offset` of `node`'s shard.
    pub fn row(&self, node: usize, offset: usize) -> &[Gf8] {
        &self.rows[node * self.shard_len + offset]
    }

    /// Row space spanned by the shards that survive erasing `erased`
    /// nodes. Decodability questions reduce to membership queries on it.
    pub fn survivor_space(&self, erased: &[usize]) -> RowSpace {
        let mut space = RowSpace::new(self.cols());
        for node in 0..self.total_nodes {
            if erased.contains(&node) {
                continue;
            }
            for offset in 0..self.shard_len {
                space.insert(self.row(node, offset));
            }
        }
        space
    }
}

/// Extracts the generator of `code` by encoding unit stripes, and
/// verifies the encoder is actually linear while doing so.
pub fn probe(code: &dyn ErasureCode) -> Result<ProbedGenerator, AuditError> {
    let k = code.data_nodes();
    let n = code.total_nodes();
    let r = code.parity_nodes();
    let l = code.shard_alignment();
    if k == 0 || r == 0 || l == 0 || n != k + r {
        return Err(AuditError::BadGeometry {
            code: code.name(),
            detail: format!("k={k} r={r} n={n} alignment={l}"),
        });
    }
    let cols = k * l;

    let encode = |data: &[Vec<u8>]| -> Result<Vec<Vec<u8>>, AuditError> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).map_err(|e| AuditError::EncodeFailed {
            code: code.name(),
            source: e,
        })?;
        if parity.len() != r || parity.iter().any(|p| p.len() != l) {
            return Err(AuditError::BadGeometry {
                code: code.name(),
                detail: format!(
                    "encode returned {} shards (expected {r} of {l} bytes)",
                    parity.len()
                ),
            });
        }
        Ok(parity)
    };

    // Axiom 1: no affine offset.
    let zero_stripe = vec![vec![0u8; l]; k];
    let zero_parity = encode(&zero_stripe)?;
    if zero_parity.iter().any(|p| p.iter().any(|&b| b != 0)) {
        return Err(AuditError::NotLinear {
            code: code.name(),
            detail: "zero stripe encodes to non-zero parity".into(),
        });
    }

    // Unit probes: one row batch per input byte.
    let mut rows = vec![vec![Gf8::ZERO; cols]; n * l];
    for (col, row) in rows.iter_mut().enumerate().take(cols) {
        row[col] = Gf8::ONE;
    }
    let mut stripe = zero_stripe;
    for d in 0..k {
        for o in 0..l {
            stripe[d][o] = 1;
            let parity = encode(&stripe)?;
            stripe[d][o] = 0;
            let col = d * l + o;
            for (p, shard) in parity.iter().enumerate() {
                for (po, &b) in shard.iter().enumerate() {
                    rows[(k + p) * l + po][col] = Gf8::new(b);
                }
            }
        }
    }

    // Axiom 2: random stripes must match the matrix prediction. This
    // catches both additivity violations and GF-scaling violations (the
    // unit probes only ever used the byte value 1).
    let mut rng = SplitMix64::new(0x5eed_c0de ^ (n as u64) << 16 ^ cols as u64);
    for _ in 0..4 {
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..l).map(|_| rng.next_byte()).collect())
            .collect();
        let parity = encode(&data)?;
        for (p, shard) in parity.iter().enumerate() {
            for (po, &b) in shard.iter().enumerate() {
                let row = &rows[(k + p) * l + po];
                let mut acc = Gf8::ZERO;
                for (col, &coeff) in row.iter().enumerate() {
                    acc += coeff * Gf8::new(data[col / l][col % l]);
                }
                if acc.value() != b {
                    return Err(AuditError::NotLinear {
                        code: code.name(),
                        detail: format!(
                            "random stripe disagrees with probed matrix at \
                             parity {p} byte {po}: predicted {:#04x}, got {b:#04x}",
                            acc.value()
                        ),
                    });
                }
            }
        }
    }

    Ok(ProbedGenerator {
        total_nodes: n,
        data_nodes: k,
        shard_len: l,
        rows,
    })
}

/// An incrementally built row space over GF(2^8), kept in reduced
/// echelon form so rank and membership queries are one back-substitution
/// pass each. GF(2) vectors (coefficients in {0, 1}) work unchanged —
/// GF(2) is a subfield.
#[derive(Debug, Clone)]
pub struct RowSpace {
    cols: usize,
    /// Basis rows, each normalised to a leading 1 at `pivots[i]`,
    /// ascending by pivot.
    basis: Vec<Vec<Gf8>>,
    pivots: Vec<usize>,
}

impl RowSpace {
    /// An empty space of vectors with `cols` coordinates.
    pub fn new(cols: usize) -> Self {
        RowSpace {
            cols,
            basis: Vec::new(),
            pivots: Vec::new(),
        }
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// `true` when the space is all of GF(2^8)^cols.
    pub fn is_full(&self) -> bool {
        self.rank() == self.cols
    }

    /// Reduces `row` against the basis; the remainder is zero exactly
    /// when `row` lies in the space.
    fn residual(&self, row: &[Gf8]) -> Vec<Gf8> {
        debug_assert_eq!(row.len(), self.cols, "row width mismatch");
        let mut v = row.to_vec();
        for (b, &p) in self.basis.iter().zip(&self.pivots) {
            let c = v[p];
            if !c.is_zero() {
                for (x, &y) in v.iter_mut().zip(b) {
                    *x -= c * y;
                }
            }
        }
        v
    }

    /// Membership test.
    pub fn contains(&self, row: &[Gf8]) -> bool {
        self.residual(row).iter().all(|c| c.is_zero())
    }

    /// Whether the unit vector `e_col` lies in the space — i.e. whether
    /// that data byte is recoverable from the spanning shards.
    pub fn contains_unit(&self, col: usize) -> bool {
        let mut unit = vec![Gf8::ZERO; self.cols];
        unit[col] = Gf8::ONE;
        self.contains(&unit)
    }

    /// Adds `row` to the space; returns `true` when the rank grew.
    pub fn insert(&mut self, row: &[Gf8]) -> bool {
        let mut v = self.residual(row);
        let Some(pivot) = v.iter().position(|c| !c.is_zero()) else {
            return false;
        };
        let inv = v[pivot]
            .inverse()
            .expect("pivot is nonzero by the position test above");
        for c in &mut v {
            *c *= inv;
        }
        // Back-substitute into earlier rows so the form stays reduced.
        for (b, &p) in self.basis.iter_mut().zip(&self.pivots) {
            debug_assert_ne!(p, pivot, "duplicate pivot would break reduction");
            let c = b[pivot];
            if !c.is_zero() {
                for (x, &y) in b.iter_mut().zip(&v) {
                    *x -= c * y;
                }
            }
        }
        let at = self.pivots.partition_point(|&p| p < pivot);
        self.pivots.insert(at, pivot);
        self.basis.insert(at, v);
        true
    }
}

/// Tiny deterministic RNG (SplitMix64) so the linearity spot-checks need
/// no external dependency and reproduce bit-for-bit.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(crate) fn next_byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowspace_rank_and_membership() {
        let g = Gf8::new;
        let mut s = RowSpace::new(3);
        assert!(s.insert(&[g(1), g(2), g(3)]));
        assert!(s.insert(&[g(0), g(1), g(7)]));
        // A combination of the first two must not grow the rank.
        let combo: Vec<Gf8> = [g(1) * g(5), g(2) * g(5) + g(1), g(3) * g(5) + g(7)]
            .into_iter()
            .collect();
        assert!(s.contains(&combo));
        assert!(!s.insert(&combo));
        assert_eq!(s.rank(), 2);
        assert!(!s.is_full());
        assert!(s.insert(&[g(0), g(0), g(1)]));
        assert!(s.is_full());
        assert!(s.contains_unit(0) && s.contains_unit(1) && s.contains_unit(2));
    }

    #[test]
    fn rowspace_unit_membership_without_full_rank() {
        let g = Gf8::new;
        let mut s = RowSpace::new(3);
        s.insert(&[g(1), g(0), g(0)]);
        s.insert(&[g(0), g(3), g(0)]);
        assert!(s.contains_unit(0));
        assert!(s.contains_unit(1));
        assert!(!s.contains_unit(2));
    }

    #[test]
    fn probe_recovers_rs_generator() {
        let code = apec_rs::ReedSolomon::new(4, 2, apec_rs::MatrixKind::Vandermonde).unwrap();
        let gen = probe(&code).unwrap();
        assert_eq!(gen.total_nodes, 6);
        assert_eq!(gen.shard_len, 1);
        // Top block is the identity; parity rows match the real generator.
        let real = code.generator();
        for node in 0..6 {
            for col in 0..4 {
                assert_eq!(gen.row(node, 0)[col], real.get(node, col), "({node},{col})");
            }
        }
    }

    #[test]
    fn probe_rejects_affine_encoder() {
        struct Affine;
        impl ErasureCode for Affine {
            fn name(&self) -> String {
                "affine-test-double".into()
            }
            fn data_nodes(&self) -> usize {
                2
            }
            fn parity_nodes(&self) -> usize {
                1
            }
            fn fault_tolerance(&self) -> usize {
                1
            }
            fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, apec_ec::EcError> {
                let len = self.check_data_shards(data)?;
                // XOR parity plus a constant offset: not linear.
                let mut p = vec![0x55u8; len];
                for s in data {
                    apec_gf::xor_slice(s, &mut p).expect("equal lengths checked");
                }
                Ok(vec![p])
            }
            fn reconstruct(
                &self,
                _shards: &mut [Option<Vec<u8>>],
            ) -> Result<(), apec_ec::EcError> {
                unimplemented!("probe never reconstructs")
            }
        }
        match probe(&Affine) {
            Err(AuditError::NotLinear { .. }) => {}
            other => panic!("expected NotLinear, got {other:?}"),
        }
    }
}
