//! [`ArrayCode`]: an [`ErasureCode`] built from a declarative
//! [`XorCodeSpec`].

use apec_bitmatrix::{RecoveryPlan, SolveError, XorCodeSpec};
use apec_ec::plan::{normalize_pattern, PlanStep, RepairPlan};
use apec_ec::{EcError, ErasureCode, UpdatePattern};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// An XOR array code driven entirely by its [`XorCodeSpec`].
///
/// Columns 0..k hold data, the remaining columns hold parity. A shard is a
/// whole column: `rows_per_col` equal elements, so shard length must be a
/// multiple of `rows_per_col` ([`ErasureCode::shard_alignment`]).
///
/// Reconstruction compiles a symbolic [`RecoveryPlan`] per erasure pattern
/// and caches it, so repairing many stripes with the same failed nodes pays
/// the GF(2) solve once.
pub struct ArrayCode {
    name: String,
    spec: XorCodeSpec,
    data_cols: usize,
    tolerance: usize,
    plan_cache: Mutex<HashMap<Vec<usize>, Arc<RecoveryPlan>>>,
    /// Flat encode program: each parity element with its support expanded
    /// to *real* data elements only (earlier-parity references substituted
    /// by symmetric difference, virtual shortened elements dropped), so
    /// `encode_into` XORs data sub-slices straight into parity slices with
    /// no element materialization.
    encode_program: Vec<(usize, Vec<usize>)>,
}

impl ArrayCode {
    /// Wraps a validated spec.
    ///
    /// `data_cols` columns (starting at 0) must contain only data
    /// elements; `tolerance` is the declared column fault tolerance, which
    /// the constructor verifies exhaustively for small codes in tests (not
    /// here — construction stays O(1) so benches can build codes freely).
    pub fn new(
        name: impl Into<String>,
        spec: XorCodeSpec,
        data_cols: usize,
        tolerance: usize,
    ) -> Result<Self, EcError> {
        spec.validate().map_err(EcError::InvalidParameters)?;
        if data_cols >= spec.n_cols {
            return Err(EcError::InvalidParameters(format!(
                "data_cols {data_cols} must be less than total columns {}",
                spec.n_cols
            )));
        }
        // The first `data_cols` columns must be pure data.
        for c in 0..data_cols {
            for e in spec.column_elements(c) {
                if !spec.data_elements.contains(&e) {
                    return Err(EcError::InvalidParameters(format!(
                        "column {c} contains non-data element {e}"
                    )));
                }
            }
        }
        let rpc = spec.rows_per_col;
        let encode_program = spec
            .expanded_parity_support()
            .into_iter()
            .map(|(p, support)| {
                // Virtual (shortened) elements sit in non-data columns and
                // are identically zero — XORing them is a no-op, drop them.
                let real: Vec<usize> =
                    support.into_iter().filter(|&e| e / rpc < data_cols).collect();
                (p, real)
            })
            .collect();
        Ok(ArrayCode {
            name: name.into(),
            spec,
            data_cols,
            tolerance,
            plan_cache: Mutex::new(HashMap::new()),
            encode_program,
        })
    }

    /// The underlying spec.
    pub fn spec(&self) -> &XorCodeSpec {
        &self.spec
    }

    /// Number of element rows per column.
    pub fn rows_per_col(&self) -> usize {
        self.spec.rows_per_col
    }

    /// Exhaustively verifies the declared column fault tolerance; returns
    /// the first failing column set if the declaration is wrong.
    pub fn verify_tolerance(&self) -> Option<Vec<usize>> {
        for f in 1..=self.tolerance {
            if let Some(bad) = self.spec.verify_column_fault_tolerance(f) {
                return Some(bad);
            }
        }
        None
    }

    /// Streams a compiled plan directly from the surviving shards into
    /// freshly allocated shards for the missing columns — no per-element
    /// buffers, so decode cost scales with the repair, not the stripe.
    fn stream_plan(
        &self,
        plan: &RecoveryPlan,
        shards: &[Option<Vec<u8>>],
        missing: &[usize],
        shard_len: usize,
    ) -> Vec<(usize, Vec<u8>)> {
        let rpc = self.spec.rows_per_col;
        let elen = shard_len / rpc;
        let range = |e: usize| {
            let r = e % rpc;
            (e / rpc, r * elen..(r + 1) * elen)
        };
        let mut rebuilt: Vec<(usize, Vec<u8>)> = missing
            .iter()
            .map(|&m| (m, vec![0u8; shard_len]))
            .collect();
        for step in &plan.steps {
            let (tcol, trange) = range(step.target);
            let slot = rebuilt
                .iter_mut()
                .find(|(c, _)| *c == tcol)
                // panic-ok: plan_for only emits steps targeting the erased columns we seeded
                .expect("plan targets erased columns");
            // trange is r*elen..(r+1)*elen with r < rows_per_col, inside the elen*rpc buffer.
            let dst = &mut slot.1[trange];
            for &e in &step.sources {
                let (scol, srange) = range(e);
                // panic-ok: plan_for validated every source column as surviving before planning
                let src = shards[scol]
                    .as_deref()
                    // panic-ok: same invariant — the plan only reads surviving columns
                    .expect("plan sources survive the erasure");
                apec_gf::xor_slice(&src[srange], dst)
                    // panic-ok: srange and dst are both exactly elen bytes by construction of range()
                    .expect("element ranges are all elen bytes");
            }
        }
        rebuilt
    }

    fn plan_for(&self, missing_cols: &[usize]) -> Result<Arc<RecoveryPlan>, EcError> {
        let key = missing_cols.to_vec(); // clone-ok: tiny pattern key, not shard bytes
        if let Some(p) = self.plan_cache.lock().get(&key) {
            return Ok(Arc::clone(p));
        }
        let erased = self.spec.erase_columns(missing_cols);
        let plan = self.spec.recovery_plan(&erased).map_err(|e| match e {
            SolveError::Unrecoverable { .. } => {
                if missing_cols.len() > self.tolerance {
                    EcError::TooManyErasures {
                        missing: missing_cols.to_vec(), // clone-ok: error payload
                        tolerance: self.tolerance,
                    }
                } else {
                    EcError::UnrecoverablePattern {
                        missing: missing_cols.to_vec(), // clone-ok: error payload
                        detail: e.to_string(),
                    }
                }
            }
            other => EcError::Internal(other.to_string()),
        })?;
        let plan = Arc::new(plan);
        self.plan_cache.lock().insert(key, Arc::clone(&plan));
        Ok(plan)
    }
}

impl ErasureCode for ArrayCode {
    fn name(&self) -> String {
        self.name.clone() // clone-ok: short display string
    }

    fn data_nodes(&self) -> usize {
        self.data_cols
    }

    fn parity_nodes(&self) -> usize {
        self.spec.n_cols - self.data_cols
    }

    fn fault_tolerance(&self) -> usize {
        self.tolerance
    }

    fn shard_alignment(&self) -> usize {
        self.spec.rows_per_col
    }

    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check_data_shards(data)?;
        let rpc = self.spec.rows_per_col;
        let element_len = len / rpc;

        let mut elements = vec![Vec::new(); self.spec.total_elements()]; // alloc-ok: legacy Vec-returning encode; encode_into is the zero-alloc path
        for (c, shard) in data.iter().enumerate() {
            for r in 0..rpc {
                // Decode never copies shard bytes (pooled plan executor);
                // encode materializes elements once per stripe write.
                elements[c * rpc + r] =
                    // panic-ok: check_data_shards proved shard.len() == rpc * element_len
                    shard[r * element_len..(r + 1) * element_len].to_vec(); // clone-ok: encode path; alloc-ok: legacy encode materializes elements
            }
        }
        for c in data.len()..self.spec.n_cols {
            for r in 0..rpc {
                elements[c * rpc + r] = vec![0u8; element_len]; // alloc-ok: legacy Vec-returning encode
            }
        }
        self.spec.encode(&mut elements);

        let mut out = Vec::with_capacity(self.parity_nodes()); // alloc-ok: legacy Vec-returning encode
        for c in self.data_cols..self.spec.n_cols {
            let mut shard = Vec::with_capacity(len); // alloc-ok: legacy Vec-returning encode
            for r in 0..rpc {
                shard.extend_from_slice(&elements[c * rpc + r]);
            }
            out.push(shard);
        }
        Ok(out)
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        let len = self.check_data_shards(data)?;
        self.check_parity_bufs(parity, len)?;
        let rpc = self.spec.rows_per_col;
        let elen = len / rpc;
        for p in parity.iter_mut() {
            p.fill(0);
        }
        for (pelem, support) in &self.encode_program {
            let (pcol, prow) = (pelem / rpc, pelem % rpc);
            // Parity elements live in columns data_cols..n_cols (pure-data check in new).
            let dst = &mut parity[pcol - self.data_cols][prow * elen..(prow + 1) * elen];
            for &e in support {
                let (c, r) = (e / rpc, e % rpc);
                // The program only references real data columns.
                let src = &data[c][r * elen..(r + 1) * elen];
                apec_gf::xor_slice(src, dst).map_err(|e| EcError::Internal(e.to_string()))?;
            }
        }
        Ok(())
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (len, missing) = self.check_stripe(shards)?;
        if missing.is_empty() {
            return Ok(());
        }
        let plan = self.plan_for(&missing)?;
        for (col, shard) in self.stream_plan(&plan, shards, &missing, len) {
            // panic-ok: col comes from `missing`, which check_stripe bounded by n_cols
            shards[col] = Some(shard);
        }
        Ok(())
    }

    fn update_pattern(&self) -> UpdatePattern {
        // The cached encode program *is* the data-only dependency map
        // (virtual shortened elements already dropped): count, for each
        // real data element, how many parity elements depend on it.
        let real_data = self
            .spec
            .data_elements
            .iter()
            // Virtual (shortened) columns carry no real data.
            .filter(|&&e| self.spec.column_of(e) < self.data_cols)
            .count();
        let total_writes: usize = self.encode_program.iter().map(|(_, s)| s.len()).sum();
        let parity_writes = total_writes as f64 / real_data.max(1) as f64;
        UpdatePattern {
            node_writes: 1.0 + parity_writes,
            parity_writes,
        }
    }

    fn plan_repair(&self, erased: &[usize], wanted: &[usize]) -> Result<RepairPlan, EcError> {
        let n = self.total_nodes();
        let rpc = self.spec.rows_per_col;
        let (erased, wanted) = normalize_pattern(n, erased, wanted)?;
        if erased.is_empty() {
            return RepairPlan::from_steps(n, rpc, &[], &[], Vec::new(), &[]);
        }
        // The compiled GF(2) schedule already uses global element ids in
        // the plan IR's convention (col * rows_per_col + row); lift each
        // pure-XOR step into a coefficient-1 plan step and let `from_steps`
        // prune it back to the wanted columns.
        let compiled = self.plan_for(&erased)?;
        let steps: Vec<PlanStep> = compiled
            .steps
            .iter()
            .map(|s| PlanStep {
                target: s.target,
                sources: s.sources.iter().map(|&e| (1u8, e)).collect(),
            })
            .collect();
        RepairPlan::from_steps(n, rpc, &erased, &wanted, steps, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// RAID-4-style spec: 2 data columns + 1 parity column, 2 rows.
    fn toy_spec() -> XorCodeSpec {
        XorCodeSpec {
            n_cols: 3,
            rows_per_col: 2,
            data_elements: vec![0, 1, 2, 3],
            parity_elements: vec![4, 5],
            parity_support: vec![vec![0, 2], vec![1, 3]],
        }
    }

    fn toy_code() -> ArrayCode {
        ArrayCode::new("TOY(2,1)", toy_spec(), 2, 1).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ArrayCode::new("BAD", toy_spec(), 3, 1).is_err()); // data_cols too big
        let mut s = toy_spec();
        s.parity_support[0] = vec![];
        assert!(ArrayCode::new("BAD", s, 2, 1).is_err()); // invalid spec
        // Column containing parity claimed as data:
        assert!(ArrayCode::new("TOY", toy_spec(), 2, 1).is_ok());
    }

    #[test]
    fn alignment_enforced() {
        let code = toy_code();
        let d0 = vec![0u8; 5];
        let d1 = vec![0u8; 5];
        let err = code.encode(&[&d0, &d1]).unwrap_err();
        assert!(matches!(err, EcError::MisalignedShard { alignment: 2, got: 5 }));
    }

    #[test]
    fn encode_reconstruct_round_trip() {
        let code = toy_code();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                let mut v = vec![0u8; 8];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        for victim in 0..3 {
            let mut stripe = full.clone();
            stripe[victim] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(stripe, full, "victim {victim}");
        }
    }

    #[test]
    fn beyond_tolerance_is_typed() {
        let code = toy_code();
        let mut stripe: Vec<Option<Vec<u8>>> = vec![None, None, Some(vec![0u8; 4])];
        let err = code.reconstruct(&mut stripe).unwrap_err();
        assert!(matches!(err, EcError::TooManyErasures { tolerance: 1, .. }));
    }

    #[test]
    fn plan_cache_reuse() {
        let code = toy_code();
        let data: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        for _ in 0..3 {
            let mut stripe = full.clone();
            stripe[0] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(stripe, full);
        }
        assert_eq!(code.plan_cache.lock().len(), 1);
    }

    #[test]
    fn update_pattern_for_toy_is_raid4() {
        let up = toy_code().update_pattern();
        assert_eq!(up.parity_writes, 1.0);
        assert_eq!(up.node_writes, 2.0);
    }

    #[test]
    fn verify_tolerance_accepts_correct_declaration() {
        assert_eq!(toy_code().verify_tolerance(), None);
        let over_declared = ArrayCode::new("TOY", toy_spec(), 2, 2).unwrap();
        assert!(over_declared.verify_tolerance().is_some());
    }

    #[test]
    fn plan_execution_matches_reconstruct() {
        let code = crate::evenodd(5, 5).unwrap();
        let n = code.total_nodes();
        let rpc = code.rows_per_col();
        let len = rpc * 4;
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<Vec<u8>> = (0..code.data_nodes())
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        let mut scratch = apec_ec::RepairScratch::new();
        for a in 0..n {
            for b in a + 1..n {
                let pattern = vec![a, b];
                let shards: Vec<Option<&[u8]>> = (0..n)
                    .map(|i| {
                        if pattern.contains(&i) {
                            None
                        } else {
                            full[i].as_deref()
                        }
                    })
                    .collect();
                let plan = code.plan_repair(&pattern, &pattern).unwrap();
                assert!(!plan.is_opaque());
                let mut out = vec![Vec::new(); 2];
                code.execute_plan(&plan, &shards, &mut scratch, &mut out).unwrap();
                for (buf, &e) in out.iter().zip(&pattern) {
                    assert_eq!(Some(&buf[..]), full[e].as_deref(), "pattern {pattern:?}");
                }
                assert_eq!(
                    plan.expected_io(len).unwrap().snapshot(),
                    scratch.io().unwrap().snapshot()
                );
                // Partial decode of just the first erased column.
                let partial = code.plan_repair(&pattern, &[a]).unwrap();
                assert!(partial.steps().len() <= plan.steps().len());
                let mut one = vec![Vec::new()];
                code.execute_plan(&partial, &shards, &mut scratch, &mut one).unwrap();
                assert_eq!(Some(&one[0][..]), full[a].as_deref());
            }
        }
    }

    #[test]
    fn partial_plans_can_read_shard_fractions() {
        // Element granularity: a single-column EVENODD repair does not need
        // every row of every survivor, and the plan exposes that as
        // fractional reads.
        let code = crate::evenodd(5, 5).unwrap();
        let plan = code.plan_repair(&[0], &[0]).unwrap();
        let frac = plan.total_read_fraction();
        let survivors = (code.total_nodes() - 1) as f64;
        assert!(frac <= survivors, "reads at most the full survivor set");
        assert!(frac > 0.0);
    }
}
