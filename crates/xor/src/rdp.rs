//! RDP (Row-Diagonal Parity), the classic RAID-6 array code.
//!
//! `RDP(p)` lays a stripe out as `(p − 1)` rows × `(p + 1)` columns:
//! columns `0 .. p−1` hold data (shortenable to `k`), column `p − 1` the
//! row parity and column `p` the diagonal parity. Unlike EVENODD there is
//! no adjuster; instead each diagonal chain crosses the *row-parity*
//! column, and the diagonal class `p − 1` is simply never stored (the
//! "missing diagonal"). That makes RDP's update cost lower than EVENODD's
//! but couples the two parity columns: the diagonal parity cannot be
//! computed without the row parity.

use crate::array::ArrayCode;
use crate::slopes::is_prime;
use apec_bitmatrix::XorCodeSpec;
use apec_ec::EcError;

/// Builds `RDP(p)` shortened to `k` data columns (`1 ..= p − 1`).
pub fn rdp(p: usize, k: usize) -> Result<ArrayCode, EcError> {
    if !is_prime(p) {
        return Err(EcError::InvalidParameters(format!("p = {p} is not prime")));
    }
    if k == 0 || k > p - 1 {
        return Err(EcError::InvalidParameters(format!(
            "RDP(p={p}) supports 1..={} data columns, got {k}",
            p - 1
        )));
    }
    let rpc = p - 1;
    let n_cols = k + 2;
    let row_parity_col = k;
    let diag_parity_col = k + 1;

    let data_elements: Vec<usize> = (0..k * rpc).collect();
    let mut parity_elements = Vec::with_capacity(2 * rpc);
    let mut parity_support = Vec::with_capacity(2 * rpc);

    // Row parity: row i XORs the data cells of row i.
    for i in 0..rpc {
        parity_elements.push(row_parity_col * rpc + i);
        parity_support.push((0..k).map(|j| j * rpc + i).collect());
    }

    // Diagonal parity: class t gathers cells with (i + j) ≡ t (mod p) over
    // data columns *and* the row-parity column, whose logical column index
    // in the RDP geometry is p − 1 regardless of shortening (virtual data
    // columns k..p-1 are zero and contribute nothing).
    for t in 0..rpc {
        parity_elements.push(diag_parity_col * rpc + t);
        let mut support = Vec::new();
        for j in 0..k {
            for i in 0..rpc {
                if (i + j) % p == t {
                    support.push(j * rpc + i);
                }
            }
        }
        // Row-parity column sits at logical position p − 1: cell (i, p−1)
        // is on diagonal (i + p − 1) mod p, i.e. i ≡ t + 1 (mod p).
        let i = (t + 1) % p;
        if i < rpc {
            support.push(row_parity_col * rpc + i);
        }
        parity_support.push(support);
    }

    let spec = XorCodeSpec {
        n_cols,
        rows_per_col: rpc,
        data_elements,
        parity_elements,
        parity_support,
    };
    ArrayCode::new(format!("RDP({k},2)"), spec, k, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_ec::ErasureCode;
    use rand::prelude::*;

    #[test]
    fn parameter_validation() {
        assert!(rdp(4, 2).is_err()); // p not prime
        assert!(rdp(5, 0).is_err());
        assert!(rdp(5, 5).is_err()); // k > p-1
        assert!(rdp(5, 4).is_ok());
    }

    #[test]
    fn exhaustive_double_fault_tolerance() {
        for p in [3usize, 5, 7, 11] {
            for k in [p - 1, ((p - 1) / 2).max(1), 1] {
                if k == 0 {
                    continue;
                }
                let code = rdp(p, k).unwrap();
                assert_eq!(
                    code.verify_tolerance(),
                    None,
                    "RDP(p={p},k={k}) failed exhaustive check"
                );
            }
        }
    }

    #[test]
    fn hand_computed_small_case() {
        // RDP(3): 2 rows, data cols 0..1, row parity col 2? No — shortened
        // to k=2 (the maximum for p=3): cols [d0, d1, P, Q].
        let code = rdp(3, 2).unwrap();
        let d0 = vec![1u8, 2];
        let d1 = vec![4u8, 8];
        let parity = code.encode(&[&d0, &d1]).unwrap();
        // Row parity: (1^4, 2^8) = (5, 10).
        assert_eq!(parity[0], vec![5, 10]);
        // Diagonals mod 3, cells (i, j) with class i+j, row-parity col at
        // logical j = 2:
        //   Q[0]: data (0,0) class 0; row-parity cell i=1 (class 1+2=0) → 1 ^ 10 = 11.
        //   Q[1]: data (1,0),(0,1) class 1; row-parity i=2 invalid → 2 ^ 4 = 6.
        assert_eq!(parity[1], vec![11, 6]);
    }

    #[test]
    fn round_trip_all_double_patterns() {
        let mut rng = StdRng::seed_from_u64(21);
        let code = rdp(7, 6).unwrap();
        let shard_len = 6 * 8;
        let data: Vec<Vec<u8>> = (0..6)
            .map(|_| {
                let mut v = vec![0u8; shard_len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        let n = code.total_nodes();
        for a in 0..n {
            for b in a + 1..n {
                let mut stripe = full.clone();
                stripe[a] = None;
                stripe[b] = None;
                code.reconstruct(&mut stripe).unwrap();
                assert_eq!(stripe, full, "pattern ({a},{b})");
            }
        }
    }

    #[test]
    fn triple_fault_rejected() {
        let code = rdp(5, 4).unwrap();
        let shard_len = 4 * 4;
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; shard_len]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut stripe: Vec<Option<Vec<u8>>> =
            data.into_iter().chain(parity).map(Some).collect();
        stripe[0] = None;
        stripe[1] = None;
        stripe[2] = None;
        assert!(matches!(
            code.reconstruct(&mut stripe),
            Err(EcError::TooManyErasures { tolerance: 2, .. })
        ));
    }

    #[test]
    fn update_cost_no_worse_than_evenodd() {
        // At matched shortening the two coincide exactly; against the full
        // EVENODD(p, p) (cost 4 - 2/p) RDP is strictly cheaper.
        for p in [5usize, 7, 11] {
            let rdp_cost = rdp(p, p - 1).unwrap().update_pattern().node_writes;
            let eo_short = crate::slopes::evenodd(p, p - 1)
                .unwrap()
                .update_pattern()
                .node_writes;
            let eo_full = crate::slopes::evenodd(p, p).unwrap().update_pattern().node_writes;
            assert!(rdp_cost <= eo_short + 1e-9, "RDP(p={p}) {rdp_cost} vs {eo_short}");
            assert!(rdp_cost < eo_full, "RDP(p={p}) {rdp_cost} vs full {eo_full}");
        }
    }
}
