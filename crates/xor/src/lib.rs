//! XOR-based array codes: EVENODD, RDP, STAR and a TIP-like code.
//!
//! All four are *array codes*: a stripe is a `(p-1) × n` array of elements,
//! each column living on one storage node, and every parity element is an
//! XOR of other elements. They are expressed as
//! [`apec_bitmatrix::XorCodeSpec`]s and wrapped by [`ArrayCode`], which
//! implements the workspace-wide [`apec_ec::ErasureCode`] trait with a
//! cached symbolic solver for reconstruction.
//!
//! # Constructions
//!
//! EVENODD, STAR and the TIP-like code are all members of one family of
//! *slope codes* over a prime `p` (see [`SlopeCode`]): the parity of slope
//! `s` at row `t` XORs every data element on the diagonal
//! `(row + s·col) ≡ t (mod p)`, plus — for non-zero slopes — the
//! "adjuster" diagonal `(row + s·col) ≡ p−1 (mod p)`, exactly as EVENODD's
//! `S` term. In this light:
//!
//! * `EVENODD(p)` = slopes `{0, 1}` (RAID-6),
//! * `STAR(p)` = slopes `{0, 1, −1}` (EVENODD plus anti-diagonals),
//! * `TIP-like(p)` = slopes `{0, 1, 2}` — a Blaum-Roth-style triple-parity
//!   code in which, unlike STAR, all three parities are *independently*
//!   computable from data. The original TIP-Code's exact element placement
//!   is defined in its own paper; this stand-in preserves the properties
//!   the Approximate-Code paper relies on (XOR-based 3DFT, independent
//!   parity generation, prime-`p` geometry) and its triple-fault tolerance
//!   is verified exhaustively in the test suite for every `p` used in the
//!   evaluation.
//!
//! `RDP(p)` is separate: it has no adjuster; instead its diagonal parity
//! chains cross the row-parity column.
//!
//! All codes support *shortening*: `k` may be less than the natural number
//! of data columns, with the omitted columns treated as all-zero virtual
//! columns (the standard way to run `STAR(k, 3)` at arbitrary `k`).
//!
//! ```
//! use apec_ec::ErasureCode;
//!
//! let code = apec_xor::star(5, 5).unwrap(); // STAR(5,3): 5 data + 3 parity
//! let shard = vec![7u8; code.shard_alignment() * 16];
//! let data: Vec<Vec<u8>> = (0..5).map(|_| shard.clone()).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
//! let parity = code.encode(&refs).unwrap();
//!
//! // Any three columns may fail.
//! let mut stripe: Vec<Option<Vec<u8>>> =
//!     data.into_iter().chain(parity).map(Some).collect();
//! stripe[0] = None;
//! stripe[4] = None;
//! stripe[6] = None;
//! code.reconstruct(&mut stripe).unwrap();
//! assert!(stripe.iter().all(|s| s.is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod rdp;
mod slopes;

pub use array::ArrayCode;
pub use rdp::rdp;
pub use slopes::{evenodd, is_prime, next_prime_at_least, slope_class_cells, star, tip_like, SlopeCode};
