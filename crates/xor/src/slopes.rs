//! The slope-code family: EVENODD, STAR and the TIP-like code.
//!
//! See the crate docs for the construction. Everything here reduces to
//! [`slope_class_cells`], which enumerates the data cells participating in
//! one parity element; the Approximate-Code framework reuses it to build
//! composite global stripes.

use crate::array::ArrayCode;
use apec_bitmatrix::XorCodeSpec;
use apec_ec::EcError;

/// Simple deterministic primality test (trial division — parameters are
/// tiny array-code primes).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Smallest prime `>= n`.
pub fn next_prime_at_least(n: usize) -> usize {
    let mut p = n.max(2);
    while !is_prime(p) {
        p += 1;
    }
    p
}

/// The data cells `(row, col)` covered by the parity element of slope `s`
/// at parity row `t`, over `k` data columns of a prime-`p` array with
/// `p − 1` element rows.
///
/// Cells on the diagonal class `(row + s·col) ≡ t (mod p)` are always
/// included; when `include_adjuster` is set (every non-zero slope), the
/// adjuster class `(row + s·col) ≡ p − 1 (mod p)` is XORed in as well —
/// the expanded form of EVENODD's `S` term.
pub fn slope_class_cells(
    p: usize,
    k: usize,
    s: usize,
    t: usize,
    include_adjuster: bool,
) -> Vec<(usize, usize)> {
    debug_assert!(t < p - 1, "parity rows run 0..p-1");
    let mut cells = Vec::new();
    for j in 0..k {
        for i in 0..p - 1 {
            let class = (i + s * j) % p;
            let in_main = class == t;
            let in_adjuster = include_adjuster && class == p - 1;
            // A cell in both classes would cancel, but main class t < p-1
            // and adjuster class p-1 are distinct by construction.
            if in_main || in_adjuster {
                cells.push((i, j));
            }
        }
    }
    cells
}

/// A slope-code builder: `k` data columns shortened from a prime `p`, one
/// parity column per slope.
#[derive(Debug, Clone)]
pub struct SlopeCode {
    /// The prime geometry parameter.
    pub p: usize,
    /// Number of (real) data columns, `1 ..= p`.
    pub k: usize,
    /// Parity slopes, reduced mod `p`, all distinct.
    pub slopes: Vec<usize>,
}

impl SlopeCode {
    /// Validates the geometry.
    pub fn new(p: usize, k: usize, slopes: Vec<usize>) -> Result<Self, EcError> {
        if !is_prime(p) {
            return Err(EcError::InvalidParameters(format!("p = {p} is not prime")));
        }
        if k == 0 || k > p {
            return Err(EcError::InvalidParameters(format!(
                "k = {k} must be in 1..={p}"
            )));
        }
        if slopes.is_empty() {
            return Err(EcError::InvalidParameters("no slopes given".into()));
        }
        let mut reduced: Vec<usize> = slopes.iter().map(|&s| s % p).collect();
        reduced.sort_unstable();
        reduced.dedup();
        if reduced.len() != slopes.len() {
            return Err(EcError::InvalidParameters(format!(
                "slopes {slopes:?} are not distinct mod {p}"
            )));
        }
        Ok(SlopeCode {
            p,
            k,
            slopes: slopes.iter().map(|&s| s % p).collect(),
        })
    }

    /// Builds the [`XorCodeSpec`]: columns `0..k` data, then one parity
    /// column per slope, `p − 1` element rows each.
    pub fn spec(&self) -> XorCodeSpec {
        let (p, k) = (self.p, self.k);
        let rpc = p - 1;
        let m = self.slopes.len();
        let n_cols = k + m;
        let data_elements: Vec<usize> = (0..k * rpc).collect();
        let mut parity_elements = Vec::with_capacity(m * rpc);
        let mut parity_support = Vec::with_capacity(m * rpc);
        for (si, &s) in self.slopes.iter().enumerate() {
            let pcol = k + si;
            for t in 0..rpc {
                parity_elements.push(pcol * rpc + t);
                let cells = slope_class_cells(p, k, s, t, s != 0);
                parity_support.push(cells.into_iter().map(|(i, j)| j * rpc + i).collect());
            }
        }
        XorCodeSpec {
            n_cols,
            rows_per_col: rpc,
            data_elements,
            parity_elements,
            parity_support,
        }
    }

    /// Wraps the spec in an [`ArrayCode`] with the given display name and
    /// declared column fault tolerance.
    pub fn build(&self, name: impl Into<String>, tolerance: usize) -> Result<ArrayCode, EcError> {
        ArrayCode::new(name, self.spec(), self.k, tolerance)
    }
}

/// `EVENODD(p)` shortened to `k` data columns: slopes `{0, 1}`, tolerance 2.
pub fn evenodd(p: usize, k: usize) -> Result<ArrayCode, EcError> {
    SlopeCode::new(p, k, vec![0, 1])?.build(format!("EVENODD({k},2)"), 2)
}

/// `STAR(p)` shortened to `k` data columns: slopes `{0, 1, −1}`,
/// tolerance 3.
pub fn star(p: usize, k: usize) -> Result<ArrayCode, EcError> {
    SlopeCode::new(p, k, vec![0, 1, p - 1])?.build(format!("STAR({k},3)"), 3)
}

/// The TIP-like code shortened to `k` data columns: slopes `{0, 1, 2}`,
/// tolerance 3. See the crate docs for the relationship to the original
/// TIP-Code.
pub fn tip_like(p: usize, k: usize) -> Result<ArrayCode, EcError> {
    SlopeCode::new(p, k, vec![0, 1, 2])?.build(format!("TIP({k},3)"), 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_ec::ErasureCode;
    use rand::prelude::*;

    #[test]
    fn primality_helpers() {
        let primes: Vec<usize> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert_eq!(next_prime_at_least(6), 7);
        assert_eq!(next_prime_at_least(7), 7);
        assert_eq!(next_prime_at_least(0), 2);
        assert_eq!(next_prime_at_least(14), 17);
    }

    #[test]
    fn slope_code_validation() {
        assert!(SlopeCode::new(4, 2, vec![0, 1]).is_err()); // p not prime
        assert!(SlopeCode::new(5, 0, vec![0]).is_err()); // k too small
        assert!(SlopeCode::new(5, 6, vec![0]).is_err()); // k > p
        assert!(SlopeCode::new(5, 3, vec![]).is_err()); // no slopes
        assert!(SlopeCode::new(5, 3, vec![1, 6]).is_err()); // 6 ≡ 1 mod 5
        assert!(SlopeCode::new(5, 5, vec![0, 1, 4]).is_ok());
    }

    #[test]
    fn specs_validate_structurally() {
        for p in [3usize, 5, 7] {
            for k in 1..=p {
                for slopes in [vec![0], vec![0, 1], vec![0, 1, p - 1], vec![0, 1, 2 % p]] {
                    let mut s = slopes.clone();
                    s.sort_unstable();
                    s.dedup();
                    if s.len() != slopes.len() {
                        continue;
                    }
                    let code = SlopeCode::new(p, k, slopes.clone()).unwrap();
                    code.spec()
                        .validate()
                        .unwrap_or_else(|e| panic!("p={p} k={k} slopes={slopes:?}: {e}"));
                }
            }
        }
    }

    #[test]
    fn evenodd_matches_hand_computed_small_case() {
        // EVENODD(3): 2 rows, 3 data cols (+2 parity). Hand-check parities
        // on a known pattern.
        let code = evenodd(3, 3).unwrap();
        // Data columns as (row0, row1) bytes:
        let d0 = vec![1u8, 2];
        let d1 = vec![4u8, 8];
        let d2 = vec![16u8, 32];
        let parity = code.encode(&[&d0, &d1, &d2]).unwrap();
        // Horizontal: row0 = 1^4^16 = 21, row1 = 2^8^32 = 42.
        assert_eq!(parity[0], vec![21, 42]);
        // Diagonal classes mod 3 (cell (i,j) class (i+j) mod 3):
        //   class 0: (0,0),(1,2)   class 1: (1,0),(0,1)
        //   class 2 (adjuster S): (1,1),(0,2) => S = 8 ^ 16 = 24.
        // Q[0] = 1 ^ 32 ^ S = 57; Q[1] = 2 ^ 4 ^ S = 30.
        assert_eq!(parity[1], vec![57, 30]);
    }

    #[test]
    fn evenodd_exhaustive_double_fault_tolerance() {
        for p in [3usize, 5, 7] {
            for k in [p, p - 1, 2.min(p)] {
                let code = evenodd(p, k).unwrap();
                assert_eq!(
                    code.verify_tolerance(),
                    None,
                    "EVENODD(p={p},k={k}) failed exhaustive check"
                );
            }
        }
    }

    #[test]
    fn star_exhaustive_triple_fault_tolerance() {
        for p in [3usize, 5, 7] {
            for k in [p, p - 2] {
                if k == 0 {
                    continue;
                }
                let code = star(p, k).unwrap();
                assert_eq!(
                    code.verify_tolerance(),
                    None,
                    "STAR(p={p},k={k}) failed exhaustive check"
                );
            }
        }
    }

    #[test]
    fn tip_like_exhaustive_triple_fault_tolerance() {
        for p in [5usize, 7] {
            for k in [p, p - 2] {
                let code = tip_like(p, k).unwrap();
                assert_eq!(
                    code.verify_tolerance(),
                    None,
                    "TIP(p={p},k={k}) failed exhaustive check"
                );
            }
        }
    }

    #[test]
    fn paper_evaluation_primes_spot_checks() {
        // The evaluation uses k up to 17. Exhaustive triple enumeration at
        // p=17 is ~1.5k patterns; keep it to the two largest primes and
        // sample double faults for speed in debug builds.
        let mut rng = StdRng::seed_from_u64(99);
        for p in [11usize, 13] {
            let code = star(p, p).unwrap();
            let n = code.total_nodes();
            for _ in 0..40 {
                let mut cols: Vec<usize> = (0..n).collect();
                cols.shuffle(&mut rng);
                let f = rng.random_range(1..=3);
                let pattern: Vec<usize> = {
                    let mut v = cols[..f].to_vec();
                    v.sort_unstable();
                    v
                };
                assert!(
                    code.spec().can_recover_columns(&pattern),
                    "STAR(p={p}) failed {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn round_trip_with_real_data() {
        let mut rng = StdRng::seed_from_u64(7);
        for (builder, tolerance) in [
            (star as fn(usize, usize) -> Result<ArrayCode, EcError>, 3),
            (tip_like, 3),
            (evenodd, 2),
        ] {
            let p = 5;
            let code = builder(p, p).unwrap();
            let shard_len = (p - 1) * 16;
            let data: Vec<Vec<u8>> = (0..p)
                .map(|_| {
                    let mut v = vec![0u8; shard_len];
                    rng.fill(v.as_mut_slice());
                    v
                })
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs).unwrap();
            let full: Vec<Option<Vec<u8>>> =
                data.iter().cloned().chain(parity).map(Some).collect();

            let n = code.total_nodes();
            let mut victims: Vec<usize> = (0..n).collect();
            victims.shuffle(&mut rng);
            victims.truncate(tolerance);
            let mut stripe = full.clone();
            for &v in &victims {
                stripe[v] = None;
            }
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(stripe, full, "{} victims {victims:?}", code.name());
        }
    }

    #[test]
    fn shortened_codes_round_trip() {
        // k < p exercises virtual zero columns.
        let code = star(7, 4).unwrap();
        assert_eq!(code.data_nodes(), 4);
        assert_eq!(code.total_nodes(), 7);
        let shard_len = 6 * 4;
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; shard_len]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        let mut stripe = full.clone();
        stripe[0] = None;
        stripe[4] = None;
        stripe[6] = None;
        code.reconstruct(&mut stripe).unwrap();
        assert_eq!(stripe, full);
    }

    #[test]
    fn star_update_cost_matches_table3_formula() {
        // Table 3: STAR single-write overhead is 6 − 4/p (for k = p).
        for p in [5usize, 7, 11, 13] {
            let code = star(p, p).unwrap();
            let expect = 6.0 - 4.0 / p as f64;
            let got = code.update_pattern().node_writes;
            assert!(
                (got - expect).abs() < 1e-9,
                "STAR(p={p}): got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn evenodd_update_cost_formula() {
        // EVENODD: 1 data write + 1 horizontal + slope-1 average
        // 2(p-1)/p  =>  total 2 + 2(p-1)/p = 4 - 2/p.
        for p in [5usize, 7, 11] {
            let code = evenodd(p, p).unwrap();
            let expect = 4.0 - 2.0 / p as f64;
            let got = code.update_pattern().node_writes;
            assert!(
                (got - expect).abs() < 1e-9,
                "EVENODD(p={p}): got {got}, expected {expect}"
            );
        }
    }
}
