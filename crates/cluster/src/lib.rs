//! An HDFS-like storage-cluster simulator.
//!
//! The paper evaluates on a Hadoop 3.0.3 cluster (one NameNode, `h`
//! DataNodes, 1 GB per node). This crate substitutes that testbed with
//! two complementary layers (substitution rationale in DESIGN.md):
//!
//! * [`store::Cluster`] — a *functional* cluster: in-memory DataNodes,
//!   NameNode metadata, failure injection, degraded reads and real
//!   codec-driven repair, with I/O accounting. This answers every
//!   correctness question end-to-end.
//! * [`engine`]/[`timing`] — a *discrete-event timing model*: disks, NIC
//!   directions and decode CPUs are FIFO resources; a repair becomes a
//!   chunked read→transfer→decode→write task DAG whose makespan is the
//!   recovery time. [`planner`] extracts each codec's repair shape from
//!   its actual decode plans, so the simulated times inherit the real
//!   I/O asymmetries (LRC's local repairs, Approximate Code's skipped
//!   unimportant data) that drive the paper's Figure 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod planner;
pub mod store;
pub mod timing;

pub use engine::{Schedule, Simulation};
pub use planner::{RepairPlanner, RepairProfile};
pub use store::{BlockId, Cluster, ClusterError, ObjectMeta};
pub use timing::{simulate_repair, ClusterConfig, RecoveryTime};
