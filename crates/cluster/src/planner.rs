//! Repair profiles: what a node repair must read, compute and write.
//!
//! The timing model is codec-agnostic; this module extracts, for each
//! codec family, the *shape* of a repair from the codec's own decode
//! machinery. A profile is a set of [`RepairGroup`]s — one per failed
//! node, each rebuilt by its own worker (HDFS-style distributed
//! reconstruction) — so the simulator naturally captures both the
//! parallelism of independent local repairs (Approximate Code's whole
//! point) and the source-disk contention when several workers pull from
//! the same survivors (plain RS's curse).

use apec_ec::{EcError, ErasureCode};
use apec_lrc::Lrc;
use apec_rs::ReedSolomon;
use apec_xor::ArrayCode;
use approx_code::ApproxCode;

/// The rebuild of one failed node.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairGroup {
    /// The failed node this group rebuilds.
    pub target: usize,
    /// `(source node, fraction of its shard read)` pairs.
    pub reads: Vec<(usize, f64)>,
    /// Fraction of a shard written to the replacement (below one when a
    /// tiered repair skips unrecoverable unimportant data; zero groups are
    /// omitted from profiles entirely).
    pub write_fraction: f64,
    /// Decode volume in shard units for this group.
    pub compute_shards: f64,
}

/// The I/O shape of one stripe's repair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RepairProfile {
    /// Total nodes in the stripe.
    pub n_nodes: usize,
    /// One rebuild group per failed node with anything to rebuild.
    pub groups: Vec<RepairGroup>,
}

impl RepairProfile {
    /// Total shard-fractions read across all groups.
    pub fn total_read(&self) -> f64 {
        self.groups
            .iter()
            .flat_map(|g| g.reads.iter().map(|&(_, f)| f))
            .sum()
    }

    /// Total shard-fractions written.
    pub fn total_write(&self) -> f64 {
        self.groups.iter().map(|g| g.write_fraction).sum()
    }

    /// Total decode volume in shard units.
    pub fn total_compute(&self) -> f64 {
        self.groups.iter().map(|g| g.compute_shards).sum()
    }
}

/// Codecs that can describe their repair I/O shape.
pub trait RepairPlanner {
    /// Profiles the repair of the given failed nodes.
    ///
    /// Fails when the pattern is beyond what the code can repair at all
    /// (for tiered codes, partial repairs are legal profiles).
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError>;
}

impl RepairPlanner for ReedSolomon {
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError> {
        let n = self.total_nodes();
        let k = self.data_nodes();
        if failed.len() > self.fault_tolerance() {
            return Err(EcError::TooManyErasures {
                missing: failed.to_vec(),
                tolerance: self.fault_tolerance(),
            });
        }
        // Matrix decode: every rebuild worker fetches the same k
        // survivors in full and pays k multiply-accumulate passes.
        let sources: Vec<(usize, f64)> = (0..n)
            .filter(|node| !failed.contains(node))
            .take(k)
            .map(|node| (node, 1.0))
            .collect();
        Ok(RepairProfile {
            n_nodes: n,
            groups: failed
                .iter()
                .map(|&f| RepairGroup {
                    target: f,
                    reads: sources.clone(),
                    write_fraction: 1.0,
                    compute_shards: k as f64,
                })
                .collect(),
        })
    }
}

impl RepairPlanner for Lrc {
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError> {
        let n = self.total_nodes();
        let k = self.data_nodes();
        let group_members = |g: usize| -> Vec<usize> {
            let mut m = self.groups()[g].clone();
            m.push(self.local_parity_index(g));
            m
        };
        let mut groups = Vec::new();
        for &f in failed {
            let group = if f < k {
                Some(self.group_of(f))
            } else if f < k + self.local_groups() {
                Some(f - k)
            } else {
                None
            };
            let local_ok = group.is_some_and(|g| {
                group_members(g)
                    .iter()
                    .filter(|&&m| failed.contains(&m))
                    .count()
                    == 1
            });
            if let (true, Some(g)) = (local_ok, group) {
                // Cheap local path: read the surviving group members only.
                let reads: Vec<(usize, f64)> = group_members(g)
                    .into_iter()
                    .filter(|&m| m != f)
                    .map(|m| (m, 1.0))
                    .collect();
                let cost = reads.len() as f64;
                groups.push(RepairGroup {
                    target: f,
                    reads,
                    write_fraction: 1.0,
                    compute_shards: cost,
                });
            } else {
                // Global decode: k independent survivors.
                let sources: Vec<(usize, f64)> = (0..n)
                    .filter(|node| !failed.contains(node))
                    .take(k)
                    .map(|node| (node, 1.0))
                    .collect();
                if sources.len() < k {
                    return Err(EcError::TooManyErasures {
                        missing: failed.to_vec(),
                        tolerance: self.fault_tolerance(),
                    });
                }
                groups.push(RepairGroup {
                    target: f,
                    reads: sources,
                    write_fraction: 1.0,
                    compute_shards: k as f64,
                });
            }
        }
        Ok(RepairProfile { n_nodes: n, groups })
    }
}

/// Builds per-target groups from element-level plan steps.
fn groups_from_steps(
    epn: usize,
    failed: &[usize],
    steps: impl Iterator<Item = (usize, Vec<usize>)>,
    unsolved_per_node: &[usize],
) -> Vec<RepairGroup> {
    use std::collections::HashMap;
    // target node -> (source node -> distinct elements read), compute.
    let mut by_target: HashMap<usize, (HashMap<usize, std::collections::HashSet<usize>>, usize)> =
        HashMap::new();
    for (target_elem, sources) in steps {
        let tnode = target_elem / epn;
        let entry = by_target.entry(tnode).or_default();
        entry.1 += sources.len();
        for s in sources {
            entry.0.entry(s / epn).or_default().insert(s);
        }
    }
    failed
        .iter()
        .filter_map(|&f| {
            let write_fraction = 1.0 - unsolved_per_node[f] as f64 / epn as f64;
            let (reads, compute) = match by_target.remove(&f) {
                Some((srcs, cost)) => {
                    let mut reads: Vec<(usize, f64)> = srcs
                        .into_iter()
                        .map(|(node, elems)| (node, elems.len() as f64 / epn as f64))
                        .collect();
                    reads.sort_by_key(|&(node, _)| node);
                    (reads, cost as f64 / epn as f64)
                }
                None => (Vec::new(), 0.0),
            };
            if write_fraction <= 0.0 && reads.is_empty() {
                // Nothing recoverable on this node: the loss is delegated
                // to the approximate-recovery layer, no repair I/O at all.
                return None;
            }
            Some(RepairGroup {
                target: f,
                reads,
                write_fraction,
                compute_shards: compute,
            })
        })
        .collect()
}

impl RepairPlanner for ArrayCode {
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError> {
        let spec = self.spec();
        let epn = spec.rows_per_col;
        let erased = spec.erase_columns(failed);
        let plan = spec
            .recovery_plan(&erased)
            .map_err(|e| EcError::UnrecoverablePattern {
                missing: failed.to_vec(),
                detail: e.to_string(),
            })?;
        let unsolved = vec![0usize; spec.n_cols];
        let groups = groups_from_steps(
            epn,
            failed,
            plan.steps.iter().map(|s| (s.target, s.sources.clone())),
            &unsolved,
        );
        Ok(RepairProfile {
            n_nodes: spec.n_cols,
            groups,
        })
    }
}

impl RepairPlanner for ApproxCode {
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError> {
        let bundle = self.plan_for(failed)?;
        let epn = self.layout().elements_per_node();
        let n = self.params().total_nodes();
        let mut unsolved_per_node = vec![0usize; n];
        for &e in &bundle.unsolved {
            unsolved_per_node[e / epn] += 1;
        }
        let groups = groups_from_steps(
            epn,
            failed,
            bundle.step_io().into_iter(),
            &unsolved_per_node,
        );
        Ok(RepairProfile { n_nodes: n, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_code::{BaseFamily, Structure};

    #[test]
    fn rs_reads_k_survivors_per_worker() {
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let p = code.repair_profile(&[0, 6]).unwrap();
        assert_eq!(p.groups.len(), 2);
        for g in &p.groups {
            assert_eq!(g.reads.len(), 5);
            assert_eq!(g.write_fraction, 1.0);
            assert_eq!(g.compute_shards, 5.0);
            assert!(g.reads.iter().all(|&(n, _)| n != 0 && n != 6));
        }
        assert_eq!(p.total_read(), 10.0);
        assert_eq!(p.total_write(), 2.0);
        assert!(code.repair_profile(&[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn lrc_single_failure_is_local() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let p = code.repair_profile(&[0]).unwrap();
        assert_eq!(p.total_read(), 2.0);
        assert_eq!(p.total_compute(), 2.0);
        // Two failures in one group force the global path for both.
        let p2 = code.repair_profile(&[0, 1]).unwrap();
        assert_eq!(p2.total_read(), 16.0);
        assert!(p2.total_compute() > p.total_compute());
    }

    #[test]
    fn lrc_failures_in_distinct_groups_stay_local() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let p = code.repair_profile(&[0, 2, 4]).unwrap();
        assert_eq!(p.groups.len(), 3);
        assert_eq!(p.total_read(), 6.0);
        assert_eq!(p.total_compute(), 6.0);
        // The groups read disjoint sources — fully parallel repairs.
        let mut all: Vec<usize> = p
            .groups
            .iter()
            .flat_map(|g| g.reads.iter().map(|&(n, _)| n))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn star_triple_failure_costs_more_than_single() {
        let code = apec_xor::star(5, 5).unwrap();
        let single = code.repair_profile(&[0]).unwrap();
        let triple = code.repair_profile(&[0, 1, 2]).unwrap();
        assert!(single.total_read() <= triple.total_read());
        assert!(single.total_compute() < triple.total_compute());
        assert!(single.total_write() < triple.total_write());
        assert!(code.repair_profile(&[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn approx_partial_repair_writes_less() {
        // Two failures in an unimportant stripe of APPR.RS(4,1,2,3,Uneven):
        // nothing there is recoverable, so no repair traffic at all.
        let code =
            ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Uneven).unwrap();
        let d0 = code.params().data_node(1, 0);
        let d1 = code.params().data_node(1, 1);
        let p = code.repair_profile(&[d0, d1]).unwrap();
        assert!(p.total_write() < 2.0, "partial write {}", p.total_write());
        // A single failure repairs fully.
        let p1 = code.repair_profile(&[d0]).unwrap();
        assert_eq!(p1.total_write(), 1.0);
    }

    #[test]
    fn approx_cross_stripe_failures_read_disjoint_sources() {
        let code =
            ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, Structure::Uneven).unwrap();
        let pr = code.params();
        let p = code
            .repair_profile(&[pr.data_node(1, 0), pr.data_node(2, 1)])
            .unwrap();
        assert_eq!(p.groups.len(), 2);
        let (a, b) = (&p.groups[0], &p.groups[1]);
        for (na, _) in &a.reads {
            assert!(!b.reads.iter().any(|(nb, _)| nb == na), "sources overlap");
        }
    }
}
