//! Repair profiles: what a node repair must read, compute and write.
//!
//! The timing model is codec-agnostic: a profile is derived entirely from
//! the codec's own [`ErasureCode::plan_repair`] — one [`RepairGroup`] per
//! failed node, each a *partial decode* plan for just that node (HDFS-style
//! distributed reconstruction, one rebuild worker per failure) — so the
//! simulator naturally captures both the parallelism of independent local
//! repairs (Approximate Code's whole point) and the source-disk contention
//! when several workers pull from the same survivors (plain RS's curse).
//!
//! There is no per-family code here any more: the per-codec repair shapes
//! the old planner re-derived by hand (and could silently get wrong) now
//! come straight from the plan IR the codecs themselves execute.

use apec_ec::{EcError, ErasureCode};

/// The rebuild of one failed node.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairGroup {
    /// The failed node this group rebuilds.
    pub target: usize,
    /// `(source node, fraction of its shard read)` pairs.
    pub reads: Vec<(usize, f64)>,
    /// Fraction of a shard written to the replacement (below one when a
    /// tiered repair skips unrecoverable unimportant data; zero groups are
    /// omitted from profiles entirely).
    pub write_fraction: f64,
    /// Decode volume in shard units for this group.
    pub compute_shards: f64,
}

/// The I/O shape of one stripe's repair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RepairProfile {
    /// Total nodes in the stripe.
    pub n_nodes: usize,
    /// One rebuild group per failed node with anything to rebuild.
    pub groups: Vec<RepairGroup>,
}

impl RepairProfile {
    /// Total shard-fractions read across all groups.
    pub fn total_read(&self) -> f64 {
        self.groups
            .iter()
            .flat_map(|g| g.reads.iter().map(|&(_, f)| f))
            .sum()
    }

    /// Total shard-fractions written.
    pub fn total_write(&self) -> f64 {
        self.groups.iter().map(|g| g.write_fraction).sum()
    }

    /// Total decode volume in shard units.
    pub fn total_compute(&self) -> f64 {
        self.groups.iter().map(|g| g.compute_shards).sum()
    }
}

/// Codecs that can describe their repair I/O shape.
pub trait RepairPlanner {
    /// Profiles the repair of the given failed nodes.
    ///
    /// Fails when the pattern is beyond what the code can repair at all
    /// (for tiered codes, partial repairs are legal profiles).
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError>;
}

/// Every erasure code is a repair planner: each failed node's group is the
/// partial-decode plan for that node alone, so profile numbers and executed
/// repairs agree by construction.
impl<C: ErasureCode + ?Sized> RepairPlanner for C {
    fn repair_profile(&self, failed: &[usize]) -> Result<RepairProfile, EcError> {
        let n = self.total_nodes();
        let mut groups = Vec::with_capacity(failed.len());
        for &f in failed {
            let plan = self.plan_repair(failed, &[f])?;
            let reads: Vec<(usize, f64)> = plan
                .reads()
                .iter()
                .map(|r| (r.node, plan.read_fraction(r.node)))
                .collect();
            let write_fraction = plan.write_fraction(f);
            if write_fraction <= 0.0 && reads.is_empty() {
                // Nothing recoverable on this node: the loss is delegated
                // to the approximate-recovery layer, no repair I/O at all.
                continue;
            }
            groups.push(RepairGroup {
                target: f,
                reads,
                write_fraction,
                compute_shards: plan.compute_shards(),
            });
        }
        Ok(RepairProfile { n_nodes: n, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_lrc::Lrc;
    use apec_rs::ReedSolomon;
    use approx_code::{ApproxCode, BaseFamily, Structure};

    #[test]
    fn rs_reads_k_survivors_per_worker() {
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let p = code.repair_profile(&[0, 6]).unwrap();
        assert_eq!(p.groups.len(), 2);
        for g in &p.groups {
            assert_eq!(g.reads.len(), 5);
            assert_eq!(g.write_fraction, 1.0);
            assert_eq!(g.compute_shards, 5.0);
            assert!(g.reads.iter().all(|&(n, _)| n != 0 && n != 6));
        }
        assert_eq!(p.total_read(), 10.0);
        assert_eq!(p.total_write(), 2.0);
        assert!(code.repair_profile(&[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn lrc_single_failure_is_local() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let p = code.repair_profile(&[0]).unwrap();
        assert_eq!(p.total_read(), 2.0);
        assert_eq!(p.total_compute(), 2.0);
        // Two failures in one group force the global path for both.
        let p2 = code.repair_profile(&[0, 1]).unwrap();
        assert_eq!(p2.total_read(), 16.0);
        assert!(p2.total_compute() > p.total_compute());
    }

    #[test]
    fn lrc_failures_in_distinct_groups_stay_local() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let p = code.repair_profile(&[0, 2, 4]).unwrap();
        assert_eq!(p.groups.len(), 3);
        assert_eq!(p.total_read(), 6.0);
        assert_eq!(p.total_compute(), 6.0);
        // The groups read disjoint sources — fully parallel repairs.
        let mut all: Vec<usize> = p
            .groups
            .iter()
            .flat_map(|g| g.reads.iter().map(|&(n, _)| n))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn star_triple_failure_costs_more_than_single() {
        let code = apec_xor::star(5, 5).unwrap();
        let single = code.repair_profile(&[0]).unwrap();
        let triple = code.repair_profile(&[0, 1, 2]).unwrap();
        assert!(single.total_read() <= triple.total_read());
        assert!(single.total_compute() < triple.total_compute());
        assert!(single.total_write() < triple.total_write());
        assert!(code.repair_profile(&[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn approx_partial_repair_writes_less() {
        // Two failures in an unimportant stripe of APPR.RS(4,1,2,3,Uneven):
        // nothing there is recoverable, so no repair traffic at all.
        let code =
            ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Uneven).unwrap();
        let d0 = code.params().data_node(1, 0);
        let d1 = code.params().data_node(1, 1);
        let p = code.repair_profile(&[d0, d1]).unwrap();
        assert!(p.total_write() < 2.0, "partial write {}", p.total_write());
        // A single failure repairs fully.
        let p1 = code.repair_profile(&[d0]).unwrap();
        assert_eq!(p1.total_write(), 1.0);
    }

    #[test]
    fn approx_cross_stripe_failures_read_disjoint_sources() {
        let code =
            ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, Structure::Uneven).unwrap();
        let pr = code.params();
        let p = code
            .repair_profile(&[pr.data_node(1, 0), pr.data_node(2, 1)])
            .unwrap();
        assert_eq!(p.groups.len(), 2);
        let (a, b) = (&p.groups[0], &p.groups[1]);
        for (na, _) in &a.reads {
            assert!(!b.reads.iter().any(|(nb, _)| nb == na), "sources overlap");
        }
    }

    #[test]
    fn profiles_come_from_plans_for_boxed_codes_too() {
        // The blanket impl must cover unsized `dyn ErasureCode`, which is
        // how the bench harness and the simulator hold codecs.
        let boxed: Box<dyn ErasureCode> = Box::new(ReedSolomon::vandermonde(4, 2).unwrap());
        let p = boxed.repair_profile(&[1]).unwrap();
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].reads.len(), 4);
    }
}
