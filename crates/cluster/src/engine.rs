//! The discrete-event core: FIFO resources and a dependency-driven task
//! scheduler.
//!
//! Every piece of cluster hardware (a disk, a NIC direction, a repair
//! worker's CPU) is a [`Resource`]: a FIFO server with a byte rate and a
//! fixed per-operation latency. A repair is a DAG of [`Task`]s (read →
//! transfer → compute → write, chunked for pipelining); the scheduler
//! replays the DAG event by event — each task starts when its dependencies
//! have finished *and* its resource frees up — and reports per-task finish
//! times plus the makespan.

use std::collections::BinaryHeap;

/// Nanosecond simulation timestamps (integer, so scheduling is exact and
/// deterministic).
pub type SimTime = u64;

/// Index of a resource in the [`Simulation`].
pub type ResourceId = usize;

/// Index of a task in the [`Simulation`].
pub type TaskId = usize;

/// A FIFO-served piece of hardware.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Display name (diagnostics only).
    pub name: String,
    /// Service rate in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed latency added to every operation (e.g. a disk seek), ns.
    pub op_latency_ns: u64,
}

impl Resource {
    /// Service duration for `bytes` of work, in ns.
    ///
    /// Computed as `ceil(bytes * 1e9 / rate)` in u128 integer arithmetic
    /// whenever the configured rate is an integral number of bytes/sec
    /// (every built-in hardware profile is), so nanosecond schedules stay
    /// exact for multi-GB tasks instead of drifting through `f64` rounding
    /// — an f64 loses integer precision past 2^53, which a few GB at ns
    /// granularity already exceeds. Fractional rates fall back to floats.
    fn service_ns(&self, bytes: u64) -> u64 {
        let transfer = if self.bytes_per_sec.fract() == 0.0
            && self.bytes_per_sec >= 1.0
            && self.bytes_per_sec <= u64::MAX as f64
        {
            let rate = self.bytes_per_sec as u128;
            let exact = (bytes as u128 * 1_000_000_000).div_ceil(rate);
            u64::try_from(exact).unwrap_or(u64::MAX)
        } else {
            (bytes as f64 / self.bytes_per_sec * 1e9).ceil() as u64
        };
        self.op_latency_ns + transfer
    }
}

/// One unit of work bound to a resource.
#[derive(Debug, Clone)]
pub struct Task {
    /// The resource that serves this task.
    pub resource: ResourceId,
    /// Work volume in bytes.
    pub bytes: u64,
    /// Tasks that must finish before this one may start.
    pub deps: Vec<TaskId>,
}

/// The result of running a simulation.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Finish time of each task, ns.
    pub finish_ns: Vec<SimTime>,
    /// Completion time of the whole DAG, ns.
    pub makespan_ns: SimTime,
}

impl Schedule {
    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }
}

/// A buildable simulation: add resources and tasks, then [`Simulation::run`].
#[derive(Debug, Default)]
pub struct Simulation {
    resources: Vec<Resource>,
    tasks: Vec<Task>,
}

impl Simulation {
    /// An empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource, returning its id.
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        bytes_per_sec: f64,
        op_latency_ns: u64,
    ) -> ResourceId {
        assert!(bytes_per_sec > 0.0, "resource rate must be positive");
        self.resources.push(Resource {
            name: name.into(),
            bytes_per_sec,
            op_latency_ns,
        });
        self.resources.len() - 1
    }

    /// Registers a task, returning its id.
    ///
    /// # Panics
    /// Panics on dangling resource/dependency references (caller bugs).
    pub fn add_task(&mut self, resource: ResourceId, bytes: u64, deps: Vec<TaskId>) -> TaskId {
        assert!(resource < self.resources.len(), "unknown resource");
        for &d in &deps {
            assert!(d < self.tasks.len(), "dependency on a not-yet-added task");
        }
        self.tasks.push(Task {
            resource,
            bytes,
            deps,
        });
        self.tasks.len() - 1
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the event loop.
    ///
    /// Ready tasks are served in (ready-time, insertion-order) order per
    /// resource, i.e. FIFO with deterministic tie-breaking, which mirrors
    /// how a real repair pipeline queues chunk operations.
    pub fn run(&self) -> Schedule {
        let n = self.tasks.len();
        let mut finish_ns: Vec<SimTime> = vec![0; n];
        let mut remaining_deps: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }
        let mut resource_free: Vec<SimTime> = vec![0; self.resources.len()];

        // Min-heap of (ready_time, task_id); BinaryHeap is a max-heap, so
        // store negated ordering via Reverse.
        use std::cmp::Reverse;
        let mut ready: BinaryHeap<Reverse<(SimTime, TaskId)>> = BinaryHeap::new();
        for (id, t) in self.tasks.iter().enumerate() {
            if t.deps.is_empty() {
                ready.push(Reverse((0, id)));
            }
        }

        let mut done = 0usize;
        let mut makespan = 0;
        while let Some(Reverse((ready_time, id))) = ready.pop() {
            let task = &self.tasks[id];
            let res = &self.resources[task.resource];
            let start = ready_time.max(resource_free[task.resource]);
            let finish = start + res.service_ns(task.bytes);
            resource_free[task.resource] = finish;
            finish_ns[id] = finish;
            makespan = makespan.max(finish);
            done += 1;
            for &dep in &dependents[id] {
                remaining_deps[dep] -= 1;
                if remaining_deps[dep] == 0 {
                    let ready_at = self.tasks[dep]
                        .deps
                        .iter()
                        .map(|&d| finish_ns[d])
                        .max()
                        .unwrap_or(0);
                    ready.push(Reverse((ready_at, dep)));
                }
            }
        }
        assert_eq!(done, n, "task graph has a dependency cycle");
        Schedule {
            finish_ns,
            makespan_ns: makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_duration() {
        let mut sim = Simulation::new();
        let disk = sim.add_resource("disk", 100e6, 1000); // 100 MB/s, 1 µs
        sim.add_task(disk, 100_000_000, vec![]);
        let s = sim.run();
        // 1 s transfer + 1 µs latency.
        assert_eq!(s.makespan_ns, 1_000_000_000 + 1000);
    }

    #[test]
    fn fifo_serialises_same_resource() {
        let mut sim = Simulation::new();
        let disk = sim.add_resource("disk", 1e9, 0);
        sim.add_task(disk, 1_000_000_000, vec![]);
        sim.add_task(disk, 1_000_000_000, vec![]);
        let s = sim.run();
        assert_eq!(s.makespan_ns, 2_000_000_000);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        let mut sim = Simulation::new();
        let a = sim.add_resource("a", 1e9, 0);
        let b = sim.add_resource("b", 1e9, 0);
        sim.add_task(a, 1_000_000_000, vec![]);
        sim.add_task(b, 1_000_000_000, vec![]);
        let s = sim.run();
        assert_eq!(s.makespan_ns, 1_000_000_000);
    }

    #[test]
    fn dependencies_are_respected() {
        let mut sim = Simulation::new();
        let a = sim.add_resource("a", 1e9, 0);
        let b = sim.add_resource("b", 1e9, 0);
        let t0 = sim.add_task(a, 500_000_000, vec![]);
        let t1 = sim.add_task(b, 500_000_000, vec![t0]);
        let s = sim.run();
        assert_eq!(s.finish_ns[t1], 1_000_000_000);
    }

    #[test]
    fn chunked_pipeline_overlaps_stages() {
        // 4 chunks flowing read→transfer: with equal stage rates the
        // pipeline finishes in (chunks + 1) × chunk_time, far below the
        // serial 2 × chunks × chunk_time.
        let mut sim = Simulation::new();
        let disk = sim.add_resource("disk", 1e9, 0);
        let nic = sim.add_resource("nic", 1e9, 0);
        let chunk = 250_000_000u64; // 0.25 s each
        let mut last = Vec::new();
        for _ in 0..4 {
            let r = sim.add_task(disk, chunk, vec![]);
            let t = sim.add_task(nic, chunk, vec![r]);
            last.push(t);
        }
        let s = sim.run();
        assert_eq!(s.makespan_ns, 1_250_000_000);
    }

    #[test]
    fn op_latency_counts_per_operation() {
        let mut sim = Simulation::new();
        let disk = sim.add_resource("hdd", 1e9, 5_000_000); // 5 ms seek
        for _ in 0..3 {
            sim.add_task(disk, 0, vec![]);
        }
        let s = sim.run();
        assert_eq!(s.makespan_ns, 15_000_000);
    }

    #[test]
    fn service_time_is_exact_for_huge_transfers() {
        // Past 2^53 bytes an f64 can no longer represent the byte count,
        // so the old float path silently rounded the schedule. The integer
        // path must stay ns-exact.
        let r = Resource {
            name: "nic".into(),
            bytes_per_sec: 1e9,
            op_latency_ns: 0,
        };
        let bytes = (1u64 << 53) + 1; // ~9 PB, unrepresentable in f64
        assert_eq!(r.service_ns(bytes), bytes, "1 B/ns rate: ns == bytes");
        // Exact ceiling division on a non-multiple.
        let slow = Resource {
            name: "disk".into(),
            bytes_per_sec: 3.0,
            op_latency_ns: 0,
        };
        assert_eq!(slow.service_ns(10), 3_333_333_334);
        // Fractional rates still work through the float fallback.
        let frac = Resource {
            name: "half".into(),
            bytes_per_sec: 0.5,
            op_latency_ns: 0,
        };
        assert_eq!(frac.service_ns(1), 2_000_000_000);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn dangling_resource_panics() {
        let mut sim = Simulation::new();
        sim.add_task(0, 1, vec![]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical runs give identical schedules.
        let build = || {
            let mut sim = Simulation::new();
            let r = sim.add_resource("r", 1e6, 10);
            for i in 0..20u64 {
                sim.add_task(r, i * 1000, vec![]);
            }
            sim.run()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.finish_ns, b.finish_ns);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Random DAG: layered tasks with random resources and backward deps.
    fn random_sim(seed: u64) -> (Simulation, Vec<u64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_res = rng.random_range(1..5usize);
        let mut sim = Simulation::new();
        let res: Vec<usize> = (0..n_res)
            .map(|i| sim.add_resource(format!("r{i}"), 1e6, rng.random_range(0..1000)))
            .collect();
        let n_tasks = rng.random_range(1..25usize);
        let mut durations = Vec::new();
        let mut resources = Vec::new();
        for t in 0..n_tasks {
            let deps: Vec<usize> = (0..t).filter(|_| rng.random_bool(0.2)).collect();
            let bytes = rng.random_range(0..1_000_000u64);
            let r = res[rng.random_range(0..n_res)];
            sim.add_task(r, bytes, deps);
            durations.push(bytes);
            resources.push(r);
        }
        (sim, durations, resources)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Physics invariants of the scheduler.
        #[test]
        fn schedules_respect_resource_and_dependency_bounds(seed: u64) {
            let (sim, durations, resources) = random_sim(seed);
            let schedule = sim.run();

            // (1) Makespan is at least each resource's total service time.
            let mut per_resource: std::collections::HashMap<usize, u64> = Default::default();
            for (t, &r) in resources.iter().enumerate() {
                // 1e6 B/s → 1 byte = 1000 ns.
                *per_resource.entry(r).or_default() += durations[t] * 1000;
            }
            for (_, total) in per_resource {
                prop_assert!(schedule.makespan_ns >= total);
            }

            // (2) Every task finishes no earlier than its own service time.
            for (t, &d) in durations.iter().enumerate() {
                prop_assert!(schedule.finish_ns[t] >= d * 1000);
            }

            // (3) Makespan equals the max finish.
            prop_assert_eq!(
                schedule.makespan_ns,
                schedule.finish_ns.iter().copied().max().unwrap_or(0)
            );
        }

        /// Determinism: the same simulation schedules identically.
        #[test]
        fn schedules_are_deterministic(seed: u64) {
            let (sim, _, _) = random_sim(seed);
            let a = sim.run();
            let b = sim.run();
            prop_assert_eq!(a.finish_ns, b.finish_ns);
        }
    }
}
