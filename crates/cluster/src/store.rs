//! A functional in-memory cluster: NameNode metadata plus DataNode block
//! storage, with failure injection and codec-driven repair.
//!
//! This is the end-to-end layer the examples and integration tests drive:
//! store an object, kill nodes, read degraded, repair, verify bytes. The
//! timing questions live in [`crate::timing`]; this store answers the
//! correctness questions with real shards in memory.

use apec_ec::iostats::IoStats;
use apec_ec::{DecodeSession, EcError, EncodeSession, ErasureCode};
use std::collections::HashMap;
use std::fmt;

/// Identifies one shard block on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// Object identifier.
    pub object: u64,
    /// Stripe index within the object.
    pub stripe: u32,
    /// Shard index within the stripe (the code's node position).
    pub shard: u32,
}

/// Errors from cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Not enough cluster nodes for the code's stripe width.
    TooSmall {
        /// Nodes available.
        nodes: usize,
        /// Nodes the code needs.
        needed: usize,
    },
    /// The referenced node does not exist.
    NoSuchNode(usize),
    /// An underlying codec failure.
    Codec(EcError),
    /// The object cannot be served (too many dead nodes).
    Unavailable(String),
    /// A cluster-level invariant failed (corrupted metadata, a repair plan
    /// referencing nodes outside the stripe, a reconstruct that did not
    /// fill the shard it promised). These were panics before PR 5; the
    /// store now degrades to an error so the serving path never aborts.
    Internal(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooSmall { nodes, needed } => {
                write!(f, "cluster has {nodes} nodes, the code needs {needed}")
            }
            ClusterError::NoSuchNode(n) => write!(f, "no such node {n}"),
            ClusterError::Codec(e) => write!(f, "codec error: {e}"),
            ClusterError::Unavailable(m) => write!(f, "object unavailable: {m}"),
            ClusterError::Internal(m) => write!(f, "cluster invariant violated: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<EcError> for ClusterError {
    fn from(e: EcError) -> Self {
        ClusterError::Codec(e)
    }
}

#[derive(Debug, Default)]
struct DataNode {
    alive: bool,
    blocks: HashMap<BlockId, Vec<u8>>,
}

/// Metadata the NameNode keeps for a stored object.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Object id.
    pub object: u64,
    /// Original byte length.
    pub len: usize,
    /// Number of stripes.
    pub stripes: u32,
    /// Shard length in bytes.
    pub shard_len: usize,
    /// Placement: `placement[shard]` = cluster node hosting that shard
    /// position (the same rotation for every stripe of this object).
    pub placement: Vec<usize>,
}

/// The in-memory cluster.
pub struct Cluster {
    nodes: Vec<DataNode>,
    stats: IoStats,
}

impl Cluster {
    /// Creates a cluster of `n` empty, alive nodes.
    pub fn new(n: usize) -> Self {
        Cluster {
            nodes: (0..n)
                .map(|_| DataNode {
                    alive: true,
                    blocks: HashMap::new(),
                })
                .collect(),
            stats: IoStats::new(n),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.alive)
    }

    /// Kills a node: its blocks are lost (disk failure semantics).
    pub fn kill_node(&mut self, node: usize) -> Result<(), ClusterError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(ClusterError::NoSuchNode(node))?;
        n.alive = false;
        n.blocks.clear();
        Ok(())
    }

    /// Brings a (possibly new) node back online, empty.
    pub fn revive_node(&mut self, node: usize) -> Result<(), ClusterError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(ClusterError::NoSuchNode(node))?;
        n.alive = true;
        Ok(())
    }

    fn put_block(&mut self, node: usize, id: BlockId, bytes: Vec<u8>) -> Result<(), ClusterError> {
        if !self.is_alive(node) {
            return Err(ClusterError::Unavailable(format!("node {node} is down")));
        }
        self.stats.record_write(node, bytes.len() as u64);
        self.nodes[node].blocks.insert(id, bytes);
        Ok(())
    }

    fn get_block(&self, node: usize, id: BlockId) -> Option<Vec<u8>> {
        if !self.is_alive(node) {
            return None;
        }
        let b = self.nodes[node].blocks.get(&id)?;
        self.stats.record_read(node, b.len() as u64);
        Some(b.clone())
    }

    /// Presence check without I/O accounting: metadata, not a disk read.
    fn has_block(&self, node: usize, id: BlockId) -> bool {
        self.is_alive(node) && self.nodes[node].blocks.contains_key(&id)
    }

    /// Stores an object under `code`, returning the NameNode metadata.
    ///
    /// Shard position `i` of every stripe lands on node
    /// `(i + object) % node_count` — a rotation that spreads parity load
    /// across the cluster like HDFS block placement.
    pub fn store_object(
        &mut self,
        code: &dyn ErasureCode,
        object: u64,
        data: &[u8],
        shard_len: usize,
    ) -> Result<ObjectMeta, ClusterError> {
        let width = code.total_nodes();
        if self.node_count() < width {
            return Err(ClusterError::TooSmall {
                nodes: self.node_count(),
                needed: width,
            });
        }
        let placement: Vec<usize> = (0..width)
            .map(|i| (i + object as usize) % self.node_count())
            .collect();

        // Streaming encode: `EncodeSession::encode_object` views each
        // stripe as fixed `shard_len` windows borrowed straight from
        // `data` (matching the reader's concatenate-and-truncate
        // convention — this is why it is not `split_into_shards`, whose
        // per-shard size shrinks for partial tails) and encodes parity
        // into a warm arena. Bytes are copied exactly once, into the
        // owned blocks the DataNodes keep.
        let mut session = EncodeSession::new();
        let stripes = session.encode_object(
            code,
            data,
            shard_len,
            |s, shards, parity| -> Result<(), ClusterError> {
                for (i, bytes) in shards
                    .iter()
                    .map(|sh| sh.to_vec())
                    .chain(parity.iter().cloned())
                    .enumerate()
                {
                    let id = BlockId {
                        object,
                        stripe: s as u32,
                        shard: i as u32,
                    };
                    self.put_block(placement[i], id, bytes)?;
                }
                Ok(())
            },
        )?;
        Ok(ObjectMeta {
            object,
            len: data.len(),
            stripes: stripes as u32,
            shard_len,
            placement,
        })
    }

    /// Reads an object back, decoding on the fly if nodes are down (a
    /// degraded read). The stored blocks are not modified.
    ///
    /// Degraded reads go through [`ErasureCode::plan_repair`]'s *partial
    /// decode*: only the missing **data** shards are planned as wanted, so
    /// the read fetches exactly the survivor blocks the plan names (for
    /// RS(k,r) with one dead node: k blocks) instead of the whole stripe,
    /// and a missing parity shard costs nothing at all. A [`DecodeSession`]
    /// caches the plan per erasure pattern and pools the execution scratch
    /// and output buffers across the object's stripes.
    pub fn read_object(
        &self,
        code: &dyn ErasureCode,
        meta: &ObjectMeta,
    ) -> Result<Vec<u8>, ClusterError> {
        let width = code.total_nodes();
        let k = code.data_nodes();
        // Metadata is caller-supplied; a placement that disagrees with the
        // code's width must degrade to an error, not a panic mid-read.
        if meta.placement.len() != width {
            return Err(ClusterError::Internal(format!(
                "object {}: placement lists {} nodes but the code spans {width}",
                meta.object,
                meta.placement.len()
            )));
        }
        let block_id = |s: u32, i: usize| BlockId {
            object: meta.object,
            stripe: s,
            shard: i as u32,
        };
        let mut out = Vec::with_capacity(meta.len);
        let mut session = DecodeSession::new();
        let mut stripe: Vec<Option<Vec<u8>>> = vec![None; width];
        for s in 0..meta.stripes {
            let missing: Vec<usize> = (0..width)
                .filter(|&i| !self.has_block(meta.placement[i], block_id(s, i)))
                .collect();
            let wanted: Vec<usize> = missing.iter().copied().filter(|&i| i < k).collect();
            if wanted.is_empty() {
                // All data shards are live (missing parity is irrelevant to
                // a read): stream them straight out.
                for i in 0..k {
                    let block = self
                        .get_block(meta.placement[i], block_id(s, i))
                        .ok_or_else(|| {
                            ClusterError::Internal(format!(
                                "stripe {s} shard {i}: block vanished between presence \
                                 check and fetch"
                            ))
                        })?;
                    out.extend_from_slice(&block);
                }
                continue;
            }
            let plan = session
                .plan(code, &missing, &wanted)
                .map_err(|e| ClusterError::Unavailable(format!("stripe {s}: {e}")))?;
            if !plan.unsolved().is_empty() {
                return Err(ClusterError::Unavailable(format!(
                    "stripe {s}: {} data elements unrecoverable",
                    plan.unsolved().len()
                )));
            }
            // Fetch only what the read needs: live data shards (they feed
            // the output directly) plus whatever the plan reads.
            for slot in stripe.iter_mut() {
                *slot = None;
            }
            for i in (0..k).filter(|i| !missing.contains(i)) {
                // panic-ok: stripe was allocated with exactly `width` slots and i < k <= width
                stripe[i] = self.get_block(meta.placement[i], block_id(s, i));
            }
            for r in plan.reads() {
                // A plan is untrusted input here: it may name nodes outside
                // the stripe (e.g. a foreign code's plan), so index checked.
                let slot = stripe.get_mut(r.node).ok_or_else(|| {
                    ClusterError::Internal(format!(
                        "stripe {s}: repair plan reads node {} outside stripe width {width}",
                        r.node
                    ))
                })?;
                if slot.is_none() {
                    *slot = self.get_block(meta.placement[r.node], block_id(s, r.node));
                }
            }
            let shard_refs: Vec<Option<&[u8]>> = stripe.iter().map(|o| o.as_deref()).collect();
            let rebuilt = session
                .decode(code, &shard_refs, &missing, &wanted)
                .map_err(|e| ClusterError::Unavailable(format!("stripe {s}: {e}")))?;
            for (i, slot) in stripe.iter().take(k).enumerate() {
                match wanted.binary_search(&i) {
                    Ok(w) => out.extend_from_slice(&rebuilt[w]),
                    Err(_) => out.extend_from_slice(slot.as_deref().ok_or_else(|| {
                        ClusterError::Internal(format!(
                            "stripe {s} shard {i}: live data shard not fetched for read"
                        ))
                    })?),
                }
            }
        }
        out.truncate(meta.len);
        Ok(out)
    }

    /// Repairs an object after failures: every missing block is rebuilt
    /// and written to `replacement[old_node]` (or back to the original
    /// node if it was revived).
    ///
    /// Returns the number of blocks rebuilt.
    pub fn repair_object(
        &mut self,
        code: &dyn ErasureCode,
        meta: &mut ObjectMeta,
        replacement: &HashMap<usize, usize>,
    ) -> Result<usize, ClusterError> {
        let width = code.total_nodes();
        if meta.placement.len() != width {
            return Err(ClusterError::Internal(format!(
                "object {}: placement lists {} nodes but the code spans {width}",
                meta.object,
                meta.placement.len()
            )));
        }
        let mut rebuilt = 0usize;
        // Remap the placement first so rebuilt blocks land on live nodes.
        let mut new_placement = meta.placement.clone();
        for slot in new_placement.iter_mut() {
            if let Some(&to) = replacement.get(slot) {
                if !self.is_alive(to) {
                    return Err(ClusterError::Unavailable(format!(
                        "replacement node {to} is down"
                    )));
                }
                *slot = to;
            }
        }
        for s in 0..meta.stripes {
            let mut stripe: Vec<Option<Vec<u8>>> = (0..width)
                .map(|i| {
                    self.get_block(
                        meta.placement[i],
                        BlockId {
                            object: meta.object,
                            stripe: s,
                            shard: i as u32,
                        },
                    )
                })
                .collect();
            let missing: Vec<usize> = stripe
                .iter()
                .enumerate()
                .filter(|(_, shard)| shard.is_none())
                .map(|(i, _)| i)
                .collect();
            if missing.is_empty() {
                continue;
            }
            code.reconstruct(&mut stripe)?;
            for &i in &missing {
                let id = BlockId {
                    object: meta.object,
                    stripe: s,
                    shard: i as u32,
                };
                let block = stripe.get_mut(i).and_then(Option::take).ok_or_else(|| {
                    ClusterError::Internal(format!(
                        "stripe {s} shard {i}: reconstruct did not rebuild the shard it \
                         reported missing"
                    ))
                })?;
                self.put_block(new_placement[i], id, block)?;
                rebuilt += 1;
            }
        }
        meta.placement = new_placement;
        Ok(rebuilt)
    }

    /// Stores an object from **pre-split data stripes** instead of a flat
    /// byte slice: `data_stripes[s][j]` is data shard `j` of stripe `s`,
    /// every shard already `shard_len`-sized. Parity is encoded per stripe
    /// and the usual placement rotation applies.
    ///
    /// This is the ingest path for tiered packings
    /// (`approx::tiered::pack`), where the shard↔byte mapping is the
    /// code's business and the cluster must not re-split the object.
    /// `logical_len` is recorded as `ObjectMeta::len` for bookkeeping; the
    /// caller unpacks reads itself via [`Cluster::fetch_block`].
    pub fn store_encoded(
        &mut self,
        code: &dyn ErasureCode,
        object: u64,
        data_stripes: &[Vec<Vec<u8>>],
        logical_len: usize,
    ) -> Result<ObjectMeta, ClusterError> {
        let width = code.total_nodes();
        if self.node_count() < width {
            return Err(ClusterError::TooSmall {
                nodes: self.node_count(),
                needed: width,
            });
        }
        let k = code.data_nodes();
        let shard_len = data_stripes
            .first()
            .and_then(|s| s.first())
            .map(Vec::len)
            .ok_or_else(|| ClusterError::Unavailable("no stripes to store".into()))?;
        for (s, stripe) in data_stripes.iter().enumerate() {
            if stripe.len() != k || stripe.iter().any(|sh| sh.len() != shard_len) {
                return Err(ClusterError::Unavailable(format!(
                    "stripe {s}: want {k} shards of {shard_len} B"
                )));
            }
        }
        let placement: Vec<usize> = (0..width)
            .map(|i| (i + object as usize) % self.node_count())
            .collect();
        // One warm parity arena across every stripe of the ingest.
        let mut session = EncodeSession::new();
        let mut refs: Vec<&[u8]> = Vec::with_capacity(k);
        for (s, stripe) in data_stripes.iter().enumerate() {
            refs.clear();
            refs.extend(stripe.iter().map(|sh| sh.as_slice()));
            let parity = session.encode(code, &refs)?;
            for (i, bytes) in stripe.iter().cloned().chain(parity.iter().cloned()).enumerate() {
                let id = BlockId {
                    object,
                    stripe: s as u32,
                    shard: i as u32,
                };
                self.put_block(placement[i], id, bytes)?;
            }
        }
        Ok(ObjectMeta {
            object,
            len: logical_len,
            stripes: data_stripes.len() as u32,
            shard_len,
            placement,
        })
    }

    /// Removes every block of an object, returning the bytes freed.
    ///
    /// A NameNode metadata operation: no disk I/O is charged (real systems
    /// unlink asynchronously; the paper's conversion cost model likewise
    /// counts only the data moved, not the space reclaimed).
    pub fn delete_object(&mut self, meta: &ObjectMeta) -> u64 {
        let mut freed = 0u64;
        for s in 0..meta.stripes {
            for (i, &node) in meta.placement.iter().enumerate() {
                let id = BlockId {
                    object: meta.object,
                    stripe: s,
                    shard: i as u32,
                };
                if let Some(b) = self.nodes[node].blocks.remove(&id) {
                    freed += b.len() as u64;
                }
            }
        }
        freed
    }

    /// Reads one block (I/O-accounted). `None` if the node is dead or the
    /// block is gone.
    pub fn fetch_block(&self, node: usize, id: BlockId) -> Option<Vec<u8>> {
        self.get_block(node, id)
    }

    /// Presence check (a NameNode metadata query — no I/O charged).
    pub fn block_present(&self, node: usize, id: BlockId) -> bool {
        self.has_block(node, id)
    }

    /// Writes one block (I/O-accounted). Fails if the node is dead.
    pub fn store_block(
        &mut self,
        node: usize,
        id: BlockId,
        bytes: Vec<u8>,
    ) -> Result<(), ClusterError> {
        self.put_block(node, id, bytes)
    }

    /// Bytes an object currently occupies on live nodes (metadata scan,
    /// no I/O charged). Healthy objects report
    /// `stripes × width × shard_len`; failures show up as shortfall.
    pub fn object_stored_bytes(&self, meta: &ObjectMeta) -> u64 {
        let mut total = 0u64;
        for s in 0..meta.stripes {
            for (i, &node) in meta.placement.iter().enumerate() {
                let id = BlockId {
                    object: meta.object,
                    stripe: s,
                    shard: i as u32,
                };
                if self.is_alive(node) {
                    if let Some(b) = self.nodes[node].blocks.get(&id) {
                        total += b.len() as u64;
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_rs::ReedSolomon;
    use apec_xor::star;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn store_and_read_healthy() {
        let mut cluster = Cluster::new(10);
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        let data = payload(10_000);
        let meta = cluster.store_object(&code, 1, &data, 1024).unwrap();
        assert_eq!(meta.stripes, 3);
        assert_eq!(cluster.read_object(&code, &meta).unwrap(), data);
    }

    #[test]
    fn degraded_read_survives_tolerated_failures() {
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        let data = payload(5_000);
        let meta = cluster.store_object(&code, 2, &data, 512).unwrap();
        for node in [meta.placement[0], meta.placement[3], meta.placement[5]] {
            cluster.kill_node(node).unwrap();
        }
        assert_eq!(cluster.read_object(&code, &meta).unwrap(), data);
    }

    #[test]
    fn read_fails_beyond_tolerance() {
        let mut cluster = Cluster::new(7);
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        let data = payload(2_000);
        let meta = cluster.store_object(&code, 3, &data, 512).unwrap();
        for i in 0..4 {
            cluster.kill_node(meta.placement[i]).unwrap();
        }
        assert!(matches!(
            cluster.read_object(&code, &meta),
            Err(ClusterError::Unavailable(_))
        ));
    }

    #[test]
    fn repair_onto_replacements_restores_health() {
        let mut cluster = Cluster::new(12);
        let code = star(5, 5).unwrap();
        let data = payload(30_000);
        let shard_len = code.shard_alignment() * 256;
        let mut meta = cluster.store_object(&code, 4, &data, shard_len).unwrap();

        let victims = [meta.placement[1], meta.placement[6]];
        for v in victims {
            cluster.kill_node(v).unwrap();
        }
        // Replace with the spare nodes 8..10 (outside the stripe width).
        let spare: Vec<usize> = (0..cluster.node_count())
            .filter(|n| !meta.placement.contains(n))
            .collect();
        let mapping: HashMap<usize, usize> =
            victims.iter().copied().zip(spare.iter().copied()).collect();
        let rebuilt = cluster.repair_object(&code, &mut meta, &mapping).unwrap();
        assert_eq!(rebuilt as u32, 2 * meta.stripes);

        // After repair the object reads healthily even though the dead
        // nodes stay dead.
        assert_eq!(cluster.read_object(&code, &meta).unwrap(), data);
        // And the new placement avoids dead nodes entirely.
        for &n in &meta.placement {
            assert!(cluster.is_alive(n));
        }
    }

    #[test]
    fn io_stats_track_repair_traffic() {
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 2).unwrap();
        let data = payload(4_096);
        let mut meta = cluster.store_object(&code, 5, &data, 1024).unwrap();
        cluster.stats().reset();

        cluster.kill_node(meta.placement[0]).unwrap();
        let spare = (0..8).find(|n| !meta.placement.contains(n)).unwrap();
        let mapping = HashMap::from([(meta.placement[0], spare)]);
        cluster.repair_object(&code, &mut meta, &mapping).unwrap();

        let totals = cluster.stats().totals();
        // One stripe: 4 reads of 1 KiB? data is 4096 = exactly one stripe:
        // read k=4 survivors... the repair reads all 5 surviving shards.
        assert!(totals.read_bytes >= 4 * 1024);
        assert_eq!(totals.write_bytes, 1024 * u64::from(meta.stripes));
    }

    #[test]
    fn degraded_read_fetches_exactly_k_blocks_per_stripe() {
        // ISSUE acceptance: a degraded single-shard read on RS(k,r) reads
        // exactly k survivor blocks (partial decode), not the whole stripe.
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        let data = payload(3 * 4 * 512);
        let meta = cluster.store_object(&code, 7, &data, 512).unwrap();
        cluster.kill_node(meta.placement[0]).unwrap();
        cluster.stats().reset();
        assert_eq!(cluster.read_object(&code, &meta).unwrap(), data);
        let totals = cluster.stats().totals();
        assert_eq!(totals.read_bytes, u64::from(meta.stripes) * 4 * 512);
        assert_eq!(totals.write_bytes, 0, "reads never write back");
    }

    #[test]
    fn missing_parity_costs_a_read_nothing() {
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 2).unwrap();
        let data = payload(4 * 256);
        let meta = cluster.store_object(&code, 8, &data, 256).unwrap();
        cluster.kill_node(meta.placement[5]).unwrap(); // a parity position
        cluster.stats().reset();
        assert_eq!(cluster.read_object(&code, &meta).unwrap(), data);
        let totals = cluster.stats().totals();
        assert_eq!(totals.read_bytes, 4 * 256, "only the data shards");
    }

    #[test]
    fn cluster_too_small_is_rejected() {
        let mut cluster = Cluster::new(3);
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        assert!(matches!(
            cluster.store_object(&code, 6, &[0u8; 10], 16),
            Err(ClusterError::TooSmall { nodes: 3, needed: 7 })
        ));
    }

    #[test]
    fn store_encoded_round_trips_through_fetch_block() {
        let mut cluster = Cluster::new(9);
        let code = ReedSolomon::vandermonde(3, 2).unwrap();
        let shard_len = 256;
        let stripes: Vec<Vec<Vec<u8>>> = (0..2)
            .map(|s| (0..3).map(|j| payload(shard_len + s + j) [..shard_len].to_vec()).collect())
            .collect();
        let meta = cluster.store_encoded(&code, 11, &stripes, 2 * 3 * shard_len).unwrap();
        assert_eq!(meta.stripes, 2);
        assert_eq!(meta.shard_len, shard_len);
        // Data shards come back byte-identical from their placed nodes.
        for (s, stripe) in stripes.iter().enumerate() {
            for (j, shard) in stripe.iter().enumerate() {
                let id = BlockId { object: 11, stripe: s as u32, shard: j as u32 };
                assert_eq!(cluster.fetch_block(meta.placement[j], id).as_ref(), Some(shard));
            }
        }
        // Parity was encoded too: a full stripe width is present.
        assert_eq!(
            cluster.object_stored_bytes(&meta),
            2 * 5 * shard_len as u64
        );
        // And the generic reader agrees with the flat concatenation.
        let flat: Vec<u8> = stripes.iter().flatten().flatten().copied().collect();
        assert_eq!(cluster.read_object(&code, &meta).unwrap(), flat);
    }

    #[test]
    fn store_encoded_rejects_ragged_stripes() {
        let mut cluster = Cluster::new(9);
        let code = ReedSolomon::vandermonde(3, 2).unwrap();
        let bad = vec![vec![vec![0u8; 64], vec![0u8; 64]]]; // 2 shards, want 3
        assert!(matches!(
            cluster.store_encoded(&code, 12, &bad, 128),
            Err(ClusterError::Unavailable(_))
        ));
        assert!(cluster.store_encoded(&code, 13, &[], 0).is_err());
    }

    #[test]
    fn delete_object_frees_blocks_without_io_charge() {
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 2).unwrap();
        let data = payload(4 * 512);
        let meta = cluster.store_object(&code, 14, &data, 512).unwrap();
        cluster.stats().reset();
        let freed = cluster.delete_object(&meta);
        assert_eq!(freed, 6 * 512);
        assert_eq!(cluster.object_stored_bytes(&meta), 0);
        let totals = cluster.stats().totals();
        assert_eq!((totals.read_bytes, totals.write_bytes), (0, 0));
        // The id can be reused for the re-encoded (demoted) replacement.
        assert!(cluster.store_object(&code, 14, &data, 512).is_ok());
    }

    #[test]
    fn block_level_api_accounts_io_like_the_object_path() {
        let mut cluster = Cluster::new(4);
        let id = BlockId { object: 21, stripe: 0, shard: 0 };
        cluster.store_block(2, id, vec![7u8; 100]).unwrap();
        assert!(cluster.block_present(2, id));
        assert_eq!(cluster.fetch_block(2, id).unwrap().len(), 100);
        let n = cluster.stats().node(2);
        assert_eq!((n.write_bytes, n.read_bytes), (100, 100));
        // Presence checks and stored-bytes scans stay free.
        let before = cluster.stats().totals();
        assert!(!cluster.block_present(1, id));
        let after = cluster.stats().totals();
        assert_eq!(before, after);
        // Dead node: writes fail, reads miss, presence is false.
        cluster.kill_node(2).unwrap();
        assert!(cluster.store_block(2, id, vec![0u8; 1]).is_err());
        assert!(cluster.fetch_block(2, id).is_none());
        assert!(!cluster.block_present(2, id));
    }

    #[test]
    fn kill_and_revive_lifecycle() {
        let mut cluster = Cluster::new(2);
        assert!(cluster.is_alive(0));
        cluster.kill_node(0).unwrap();
        assert!(!cluster.is_alive(0));
        cluster.revive_node(0).unwrap();
        assert!(cluster.is_alive(0));
        assert!(cluster.kill_node(9).is_err());
    }

    // PR 5 regressions: metadata/plan corruption on the serving path must
    // surface as `ClusterError::Internal`, never as a panic.

    #[test]
    fn read_with_truncated_placement_errors_instead_of_panicking() {
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        let data = payload(2_000);
        let mut meta = cluster.store_object(&code, 11, &data, 512).unwrap();
        meta.placement.truncate(3); // corrupt: code spans 7 nodes
        assert!(matches!(
            cluster.read_object(&code, &meta),
            Err(ClusterError::Internal(_))
        ));
    }

    #[test]
    fn repair_with_oversized_placement_errors_instead_of_panicking() {
        let mut cluster = Cluster::new(8);
        let code = ReedSolomon::vandermonde(4, 2).unwrap();
        let data = payload(1_000);
        let mut meta = cluster.store_object(&code, 12, &data, 512).unwrap();
        meta.placement.push(7); // corrupt: one node too many
        assert!(matches!(
            cluster.repair_object(&code, &mut meta, &HashMap::new()),
            Err(ClusterError::Internal(_))
        ));
    }

    #[test]
    fn mismatched_code_for_meta_errors_instead_of_panicking() {
        // Store under RS(4,3) but read back under RS(2,1): the placement
        // no longer matches the code width, a realistic operator mistake.
        let mut cluster = Cluster::new(8);
        let wide = ReedSolomon::vandermonde(4, 3).unwrap();
        let narrow = ReedSolomon::vandermonde(2, 1).unwrap();
        let data = payload(2_000);
        let meta = cluster.store_object(&wide, 13, &data, 512).unwrap();
        assert!(matches!(
            cluster.read_object(&narrow, &meta),
            Err(ClusterError::Internal(_))
        ));
    }

    #[test]
    fn internal_error_displays_its_invariant() {
        let err = ClusterError::Internal("stripe 3 shard 1: block vanished".into());
        let msg = err.to_string();
        assert!(msg.contains("cluster invariant violated"));
        assert!(msg.contains("stripe 3 shard 1"));
    }
}
