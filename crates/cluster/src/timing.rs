//! The repair timing model: turns a [`RepairProfile`] into a
//! discrete-event simulation and reports the recovery time.
//!
//! Topology follows the paper's testbed (DELL R730, 10 Gbps NIC, HDDs,
//! Hadoop-style distributed reconstruction): every failed node is rebuilt
//! by its own replacement worker, which pulls the required ranges from the
//! surviving sources, decodes, and writes its shard. Flows are chunked so
//! disk, network and compute pipeline against each other. Two effects the
//! paper's Figure 14 hinges on emerge naturally:
//!
//! * independent repairs (different stripes, disjoint sources) overlap
//!   almost perfectly — Approximate Code's local repairs in parallel;
//! * repairs sharing sources (RS rebuilding two shards from the same `k`
//!   survivors) contend on the source disks and uplinks, stretching the
//!   makespan;
//! * a tiered repair that skips unrecoverable unimportant data simply has
//!   less volume everywhere.

use crate::engine::Simulation;
use crate::planner::RepairProfile;
use std::collections::HashMap;

/// Hardware model for every node of the cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Sequential disk read bandwidth, bytes/s.
    pub disk_read_bps: f64,
    /// Sequential disk write bandwidth, bytes/s.
    pub disk_write_bps: f64,
    /// NIC bandwidth per direction, bytes/s.
    pub net_bps: f64,
    /// Per-disk-operation latency (seek + request), ns.
    pub disk_op_latency_ns: u64,
    /// Per-network-transfer latency, ns.
    pub net_op_latency_ns: u64,
    /// Decode kernel throughput (XOR / GF multiply-accumulate), bytes/s.
    pub compute_bps: f64,
    /// Pipeline chunk size, bytes.
    pub chunk_bytes: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // The paper's platform: 10 Gbps NIC, 8 TB HDDs (~180/160 MB/s),
        // Xeon 3.0 GHz (XOR streams at several GB/s).
        ClusterConfig {
            disk_read_bps: 180e6,
            disk_write_bps: 160e6,
            net_bps: 1.25e9,
            disk_op_latency_ns: 4_000_000,
            net_op_latency_ns: 200_000,
            compute_bps: 4e9,
            chunk_bytes: 8 << 20,
        }
    }
}

/// The outcome of a simulated repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryTime {
    /// Wall-clock recovery time, seconds.
    pub seconds: f64,
    /// Bytes read from surviving disks.
    pub bytes_read: u64,
    /// Bytes moved over the network.
    pub bytes_transferred: u64,
    /// Bytes written to replacement disks.
    pub bytes_written: u64,
    /// Bytes processed by the decode kernels.
    pub bytes_computed: u64,
}

/// Simulates repairing one failure pattern over `node_bytes` of per-node
/// data (the paper uses 1 GB nodes).
///
/// `compute_bps_override` lets the caller substitute a *measured* decode
/// throughput for the configured default, tying the simulation to the
/// real codec implementations.
pub fn simulate_repair(
    config: &ClusterConfig,
    profile: &RepairProfile,
    node_bytes: u64,
    compute_bps_override: Option<f64>,
) -> RecoveryTime {
    let mut sim = Simulation::new();
    let compute_bps = compute_bps_override.unwrap_or(config.compute_bps);

    if profile.groups.is_empty() {
        return RecoveryTime {
            seconds: 0.0,
            bytes_read: 0,
            bytes_transferred: 0,
            bytes_written: 0,
            bytes_computed: 0,
        };
    }

    // Shared source resources (disk + uplink per surviving source node).
    let mut src_disk: HashMap<usize, usize> = HashMap::new();
    let mut src_up: HashMap<usize, usize> = HashMap::new();
    for group in &profile.groups {
        for &(node, _) in &group.reads {
            src_disk.entry(node).or_insert_with(|| {
                sim.add_resource(
                    format!("disk{node}"),
                    config.disk_read_bps,
                    config.disk_op_latency_ns,
                )
            });
            src_up.entry(node).or_insert_with(|| {
                sim.add_resource(format!("up{node}"), config.net_bps, config.net_op_latency_ns)
            });
        }
    }
    // Per-group worker resources.
    struct Worker {
        down: usize,
        cpu: usize,
        disk: usize,
    }
    let workers: Vec<Worker> = profile
        .groups
        .iter()
        .map(|g| Worker {
            down: sim.add_resource(
                format!("w{}.down", g.target),
                config.net_bps,
                config.net_op_latency_ns,
            ),
            cpu: sim.add_resource(format!("w{}.cpu", g.target), compute_bps, 0),
            disk: sim.add_resource(
                format!("w{}.disk", g.target),
                config.disk_write_bps,
                config.disk_op_latency_ns,
            ),
        })
        .collect();

    let chunks = node_bytes.div_ceil(config.chunk_bytes).max(1);
    let mut bytes_read = 0u64;
    let mut bytes_transferred = 0u64;
    let mut bytes_written = 0u64;
    let mut bytes_computed = 0u64;

    for c in 0..chunks {
        let chunk = config.chunk_bytes.min(node_bytes - c * config.chunk_bytes);
        for (group, worker) in profile.groups.iter().zip(&workers) {
            let mut downloads = Vec::new();
            for &(node, frac) in &group.reads {
                let vol = (frac * chunk as f64) as u64;
                if vol == 0 {
                    continue;
                }
                bytes_read += vol;
                bytes_transferred += vol;
                let r = sim.add_task(src_disk[&node], vol, vec![]);
                let u = sim.add_task(src_up[&node], vol, vec![r]);
                downloads.push(sim.add_task(worker.down, vol, vec![u]));
            }
            let compute_vol = (group.compute_shards * chunk as f64) as u64;
            bytes_computed += compute_vol;
            let compute = sim.add_task(worker.cpu, compute_vol, downloads);
            let write_vol = (group.write_fraction * chunk as f64) as u64;
            if write_vol > 0 {
                bytes_written += write_vol;
                sim.add_task(worker.disk, write_vol, vec![compute]);
            }
        }
    }

    let schedule = sim.run();
    RecoveryTime {
        seconds: schedule.makespan_secs(),
        bytes_read,
        bytes_transferred,
        bytes_written,
        bytes_computed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::RepairPlanner;
    use apec_rs::ReedSolomon;
    use approx_code::{ApproxCode, BaseFamily, Structure};

    const GB: u64 = 1 << 30;

    #[test]
    fn empty_profile_takes_no_time() {
        let profile = RepairProfile {
            n_nodes: 4,
            groups: Vec::new(),
        };
        let t = simulate_repair(&ClusterConfig::default(), &profile, GB, None);
        assert_eq!(t.seconds, 0.0);
        assert_eq!(t.bytes_read, 0);
    }

    #[test]
    fn repair_time_scales_with_node_size() {
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let profile = code.repair_profile(&[0]).unwrap();
        let cfg = ClusterConfig::default();
        let t1 = simulate_repair(&cfg, &profile, GB / 4, None);
        let t2 = simulate_repair(&cfg, &profile, GB, None);
        assert!(t2.seconds > 3.0 * t1.seconds, "{} vs {}", t2.seconds, t1.seconds);
        assert_eq!(t2.bytes_read, 4 * t1.bytes_read);
    }

    #[test]
    fn disk_bound_repair_matches_hand_estimate() {
        // RS(5,3) single-node repair of 1 GB: 5 source disks read 1 GB
        // each in parallel (~6 s at 180 MB/s); the worker downlink moves
        // 5 GB at 1.25 GB/s (~4.3 s); the write is 1 GB at 160 MB/s
        // (~6.7 s). Stages pipeline, so the makespan sits near the
        // slowest stage, well below the ~17 s serial sum.
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let profile = code.repair_profile(&[0]).unwrap();
        let t = simulate_repair(&ClusterConfig::default(), &profile, GB, None);
        assert!(t.seconds > 6.0, "cannot beat the slowest stage: {}", t.seconds);
        assert!(t.seconds < 12.0, "pipelining should hide stage sums: {}", t.seconds);
    }

    #[test]
    fn shared_sources_contend_but_disjoint_repairs_overlap() {
        // Two RS repairs read the same 5 sources: source disks serve
        // 2 GB each, roughly doubling the read stage versus one repair.
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let cfg = ClusterConfig::default();
        let one = simulate_repair(&cfg, &code.repair_profile(&[0]).unwrap(), GB, None);
        let two = simulate_repair(&cfg, &code.repair_profile(&[0, 1]).unwrap(), GB, None);
        assert!(two.seconds > one.seconds * 1.5, "{} vs {}", two.seconds, one.seconds);

        // Two APPR local repairs in different stripes read disjoint
        // sources: barely slower than one.
        let appr =
            ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, Structure::Uneven).unwrap();
        let p = *appr.params();
        let single = simulate_repair(
            &cfg,
            &appr.repair_profile(&[p.data_node(1, 0)]).unwrap(),
            GB,
            None,
        );
        let cross = simulate_repair(
            &cfg,
            &appr
                .repair_profile(&[p.data_node(1, 0), p.data_node(2, 1)])
                .unwrap(),
            GB,
            None,
        );
        assert!(
            cross.seconds < single.seconds * 1.2,
            "disjoint repairs should overlap: {} vs {}",
            cross.seconds,
            single.seconds
        );
    }

    #[test]
    fn approx_beats_rs_on_double_failure_recovery() {
        // The paper's headline: double-failure recovery is several times
        // faster (up to 4.7×).
        let k = 5;
        let rs = ReedSolomon::vandermonde(k, 3).unwrap();
        let appr =
            ApproxCode::build_named(BaseFamily::Rs, k, 1, 2, 4, Structure::Uneven).unwrap();
        let cfg = ClusterConfig::default();

        let rs_time = simulate_repair(&cfg, &rs.repair_profile(&[0, 1]).unwrap(), GB, None);
        let p = *appr.params();
        // Typical case: two failures in different stripes.
        let ap_time = simulate_repair(
            &cfg,
            &appr
                .repair_profile(&[p.data_node(1, 0), p.data_node(2, 1)])
                .unwrap(),
            GB,
            None,
        );
        assert!(
            ap_time.seconds < rs_time.seconds,
            "APPR {} vs RS {}",
            ap_time.seconds,
            rs_time.seconds
        );

        // Same-stripe case: the unimportant stripe is unrecoverable, so
        // there is no repair traffic at all (delegated to interpolation).
        let worst = simulate_repair(
            &cfg,
            &appr
                .repair_profile(&[p.data_node(1, 0), p.data_node(1, 1)])
                .unwrap(),
            GB,
            None,
        );
        assert!(worst.seconds < ap_time.seconds);
    }

    #[test]
    fn compute_override_slows_weak_cpus() {
        let code = ReedSolomon::vandermonde(9, 3).unwrap();
        let profile = code.repair_profile(&[0, 1, 2]).unwrap();
        let cfg = ClusterConfig::default();
        let fast = simulate_repair(&cfg, &profile, GB, Some(20e9));
        let slow = simulate_repair(&cfg, &profile, GB, Some(100e6));
        assert!(slow.seconds > fast.seconds * 2.0);
    }

    #[test]
    fn byte_accounting_is_consistent() {
        let code = ReedSolomon::vandermonde(4, 2).unwrap();
        let profile = code.repair_profile(&[0, 5]).unwrap();
        let t = simulate_repair(&ClusterConfig::default(), &profile, GB, None);
        // Each of the two workers reads the same 4 survivors.
        assert_eq!(t.bytes_read, 8 * GB);
        assert_eq!(t.bytes_written, 2 * GB);
        assert_eq!(t.bytes_transferred, 8 * GB);
    }
}
