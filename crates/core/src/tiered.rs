//! Packing important/unimportant byte streams into Approximate-Code
//! stripes — the paper's "data identification and distribution" module
//! (§3.6.1), minus the video-specific identification which lives in
//! `apec-video`.
//!
//! The packer takes two streams — important bytes (I-frames) and
//! unimportant bytes (P/B-frames) — and lays them into the data shards of
//! as many stripes as needed, so that important bytes land exactly in the
//! elements the global parities protect. The unpacker inverts the layout,
//! and [`stream_location`] translates a damaged shard byte range (from
//! [`crate::TieredReport`]) back into stream coordinates so the video
//! layer knows which frames to interpolate.

use crate::code::ApproxCode;
use apec_ec::EcError;
use std::ops::Range;

/// Which logical stream a byte range belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// The important stream (I-frames).
    Important,
    /// The unimportant stream (P/B-frames).
    Unimportant,
}

/// An object packed into Approximate-Code stripes.
#[derive(Debug, Clone)]
pub struct PackedObject {
    /// Per-stripe data shards (`h·k` shards of `shard_len` bytes each).
    pub stripes: Vec<Vec<Vec<u8>>>,
    /// Shard length used for packing.
    pub shard_len: usize,
    /// Original length of the important stream.
    pub important_len: usize,
    /// Original length of the unimportant stream.
    pub unimportant_len: usize,
}

/// Bytes of important data one stripe can hold.
pub fn important_capacity(code: &ApproxCode, shard_len: usize) -> usize {
    let elen = shard_len / code.layout().elements_per_node();
    code.layout().important_data_elements.len() * elen
}

/// Bytes of unimportant data one stripe can hold.
pub fn unimportant_capacity(code: &ApproxCode, shard_len: usize) -> usize {
    let elen = shard_len / code.layout().elements_per_node();
    code.layout().unimportant_data_elements.len() * elen
}

/// Packs the two streams into as many stripes as necessary.
///
/// `shard_len` must be a positive multiple of the code's shard alignment.
/// Slack space is zero-filled; [`unpack`] needs the original lengths from
/// the returned [`PackedObject`].
pub fn pack(
    code: &ApproxCode,
    important: &[u8],
    unimportant: &[u8],
    shard_len: usize,
) -> Result<PackedObject, EcError> {
    let align = code.layout().elements_per_node();
    if shard_len == 0 || !shard_len.is_multiple_of(align) {
        return Err(EcError::MisalignedShard {
            alignment: align,
            got: shard_len,
        });
    }
    let icap = important_capacity(code, shard_len);
    let ucap = unimportant_capacity(code, shard_len);
    let stripes_needed = std::cmp::max(
        important.len().div_ceil(icap),
        unimportant.len().div_ceil(ucap),
    )
    .max(1);

    let elen = shard_len / align;
    let data_nodes = code.params().data_nodes();
    let mut stripes = Vec::with_capacity(stripes_needed);
    for s in 0..stripes_needed {
        let mut shards = vec![vec![0u8; shard_len]; data_nodes];
        // Lay the important stream into important elements, in element
        // order; likewise for unimportant.
        for (stream, elements) in [
            (important, &code.layout().important_data_elements),
            (unimportant, &code.layout().unimportant_data_elements),
        ] {
            let per_stripe = elements.len() * elen;
            for (pos, &e) in elements.iter().enumerate() {
                let src_start = s * per_stripe + pos * elen;
                if src_start >= stream.len() {
                    break;
                }
                let take = elen.min(stream.len() - src_start);
                let (node, row, slot) = code.layout().locate(e);
                let off = (row * code.layout().sub + slot) * elen;
                // panic-ok: locate() maps element ids to in-layout (node, row, slot), off+take <= shard_len
                shards[node][off..off + take]
                    .copy_from_slice(&stream[src_start..src_start + take]);
            }
        }
        stripes.push(shards);
    }
    Ok(PackedObject {
        stripes,
        shard_len,
        important_len: important.len(),
        unimportant_len: unimportant.len(),
    })
}

/// Reassembles the two streams from (possibly repaired) data shards.
pub fn unpack(
    code: &ApproxCode,
    stripes: &[Vec<Vec<u8>>],
    important_len: usize,
    unimportant_len: usize,
) -> (Vec<u8>, Vec<u8>) {
    let layout = code.layout();
    let align = layout.elements_per_node();
    let mut important = Vec::with_capacity(important_len);
    let mut unimportant = Vec::with_capacity(unimportant_len);
    for shards in stripes {
        let shard_len = shards.first().map(|s| s.len()).unwrap_or(0);
        let elen = shard_len / align;
        for (stream, elements, cap) in [
            (&mut important, &layout.important_data_elements, important_len),
            (
                &mut unimportant,
                &layout.unimportant_data_elements,
                unimportant_len,
            ),
        ] {
            for &e in elements.iter() {
                if stream.len() >= cap {
                    break;
                }
                let (node, row, slot) = layout.locate(e);
                let off = (row * layout.sub + slot) * elen;
                let take = elen.min(cap - stream.len());
                // panic-ok: locate() maps element ids to nodes inside the layout's stripe shape
                stream.extend_from_slice(&shards[node][off..off + take]);
            }
        }
    }
    important.truncate(important_len);
    unimportant.truncate(unimportant_len);
    (important, unimportant)
}

/// Translates a damaged byte range of a node's shard (stripe `stripe_idx`)
/// into stream coordinates.
///
/// Returns `None` for parity nodes or slack space beyond the packed
/// streams. Ranges are assumed element-aligned, as produced by
/// [`crate::TieredReport::lost_ranges`].
pub fn stream_location(
    code: &ApproxCode,
    stripe_idx: usize,
    node: usize,
    range: &Range<usize>,
    shard_len: usize,
) -> Option<(Stream, Range<usize>)> {
    let layout = code.layout();
    let align = layout.elements_per_node();
    let elen = shard_len / align;
    if elen == 0 || !layout.params.is_data_node(node) {
        return None;
    }
    let idx = range.start / elen; // element index within the node
    let e = node * align + idx;
    for (stream, elements) in [
        (Stream::Important, &layout.important_data_elements),
        (Stream::Unimportant, &layout.unimportant_data_elements),
    ] {
        if let Ok(pos) = elements.binary_search(&e) {
            let per_stripe = elements.len() * elen;
            let start = stripe_idx * per_stripe + pos * elen + (range.start - idx * elen);
            return Some((stream, start..start + (range.end - range.start)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BaseFamily, Structure};
    use apec_ec::ErasureCode;
    use rand::prelude::*;

    fn code() -> ApproxCode {
        ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Even).unwrap()
    }

    #[test]
    fn capacities_follow_the_1_over_h_split() {
        let code = code();
        let shard_len = code.shard_alignment() * 10;
        let icap = important_capacity(&code, shard_len);
        let ucap = unimportant_capacity(&code, shard_len);
        // 12 data nodes × shard_len bytes split 1/h : (h-1)/h.
        assert_eq!(icap + ucap, 12 * shard_len);
        assert_eq!(icap * 3, icap + ucap);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let code = code();
        let shard_len = code.shard_alignment() * 4;
        for (ilen, ulen) in [(0usize, 0usize), (10, 17), (500, 1200), (1000, 100)] {
            let mut important = vec![0u8; ilen];
            let mut unimportant = vec![0u8; ulen];
            rng.fill(important.as_mut_slice());
            rng.fill(unimportant.as_mut_slice());
            let packed = pack(&code, &important, &unimportant, shard_len).unwrap();
            let (i2, u2) = unpack(&code, &packed.stripes, ilen, ulen);
            assert_eq!(i2, important, "important stream ilen={ilen} ulen={ulen}");
            assert_eq!(u2, unimportant, "unimportant stream ilen={ilen} ulen={ulen}");
        }
    }

    #[test]
    fn misaligned_shard_len_rejected() {
        let code = code();
        assert!(matches!(
            pack(&code, &[], &[], code.shard_alignment() + 1),
            Err(EcError::MisalignedShard { .. })
        ));
        assert!(pack(&code, &[], &[], 0).is_err());
    }

    #[test]
    fn stripe_count_scales_with_the_larger_stream() {
        let code = code();
        let shard_len = code.shard_alignment();
        let icap = important_capacity(&code, shard_len);
        let packed = pack(&code, &vec![1u8; icap * 3], &[], shard_len).unwrap();
        assert_eq!(packed.stripes.len(), 3);
        let ucap = unimportant_capacity(&code, shard_len);
        let packed = pack(&code, &[], &vec![1u8; ucap + 1], shard_len).unwrap();
        assert_eq!(packed.stripes.len(), 2);
    }

    #[test]
    fn important_bytes_land_in_important_ranges() {
        let code = code();
        let shard_len = code.shard_alignment() * 2;
        let icap = important_capacity(&code, shard_len);
        let packed = pack(&code, &vec![0xAB; icap], &[], shard_len).unwrap();
        for (node, shard) in packed.stripes[0].iter().enumerate() {
            for range in code.important_ranges(node, shard_len) {
                assert!(
                    shard[range].iter().all(|&b| b == 0xAB),
                    "node {node} important range not filled"
                );
            }
        }
    }

    #[test]
    fn stream_location_round_trips() {
        let code = code();
        let shard_len = code.shard_alignment() * 2;
        let layout = code.layout();
        let elen = shard_len / layout.elements_per_node();
        // Important element 0 of stripe 1:
        let &e = layout.important_data_elements.first().unwrap();
        let (node, row, slot) = layout.locate(e);
        let off = (row * layout.sub + slot) * elen;
        let loc = stream_location(&code, 1, node, &(off..off + elen), shard_len).unwrap();
        let icap = important_capacity(&code, shard_len);
        assert_eq!(loc, (Stream::Important, icap..icap + elen));
        // Parity node ranges map nowhere.
        let pnode = code.params().local_parity_node(0, 0);
        assert_eq!(stream_location(&code, 0, pnode, &(0..elen), shard_len), None);
    }
}
