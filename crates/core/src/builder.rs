//! Code generation: turns `(family, k, r, g, h, structure)` into a
//! solvable code specification.
//!
//! This module implements the paper's *code segmentation* and *code
//! generation* steps. The base code's parities are split into `r` local
//! parities — instantiated once per local stripe, protecting all of that
//! stripe's data — and `g` global parities, computed only from the
//! important data:
//!
//! * **RS**: rows of one systematic `RS(k, r+g)` generator; the first `r`
//!   parity rows become the local code, the next `g` the global code. For
//!   the Uneven structure the important stripe plus the global nodes form
//!   a genuine `RS(k, r+g)` codeword, giving `r+g` fault tolerance.
//! * **LRC**: `r` local XOR group parities per stripe, `g` Cauchy global
//!   rows on important data.
//! * **STAR** (slopes `{0, 1, −1}`) and **TIP** (slopes `{0, 1, 2}`): the
//!   first `r` slopes are local, the remaining `g` global — exactly the
//!   paper's segmentation of STAR into horizontal/diagonal (local) and
//!   anti-diagonal (global) parities.
//!
//! The output is a single element-level specification spanning the whole
//! global stripe (all `h` local stripes plus global nodes), so one generic
//! solver handles every failure pattern — including the beyond-tolerance
//! partial recoveries that tiered storage exploits.

use crate::gfspec::GfSpec;
use crate::params::{ApprParams, BaseFamily, Structure};
use apec_bitmatrix::XorCodeSpec;
use apec_ec::EcError;
use apec_gf::{cauchy, systematic_vandermonde, GfMatrix};
use apec_xor::{next_prime_at_least, slope_class_cells};

/// The engine a generated code runs on: pure-XOR equations or
/// GF(2^8)-linear equations.
#[derive(Debug, Clone)]
pub enum Engine {
    /// XOR array-code equations (STAR/TIP families).
    Xor(XorCodeSpec),
    /// GF(2^8) equations (RS/LRC families).
    Gf(GfSpec),
}

/// One bulk operation of the encode program:
/// `dst_node[dst_elem ..][..count·elen] ^= coeff · src_node[src_elem ..]`.
///
/// The solver-facing specs work one sub-element at a time so importance
/// stays addressable; encoding does not need that granularity, so the
/// builder also emits this merged program, whose local-parity ops span
/// whole shards (`count = elements_per_node`) — h× fewer kernel calls on
/// h× larger blocks than the naive per-element walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOp {
    /// GF(2^8) coefficient (1 for plain XOR).
    pub coeff: u8,
    /// Source node.
    pub src_node: usize,
    /// First element index within the source node.
    pub src_elem: usize,
    /// Destination (parity) node.
    pub dst_node: usize,
    /// First element index within the destination node.
    pub dst_elem: usize,
    /// Number of consecutive elements covered.
    pub count: usize,
}

/// A fully generated Approximate Code layout.
#[derive(Debug, Clone)]
pub struct ApproxLayout {
    /// The framework parameters.
    pub params: ApprParams,
    /// The base code family.
    pub family: BaseFamily,
    /// Element rows per node from the base code's geometry (1 for GF
    /// families, `p − 1` for XOR families).
    pub rows: usize,
    /// Importance sub-slots per element row (`h` under Even, 1 under
    /// Uneven). Elements per node = `rows · sub`.
    pub sub: usize,
    /// The array-code prime (`0` for GF families).
    pub p: usize,
    /// The generated equations.
    pub engine: Engine,
    /// Data elements holding important data, ascending.
    pub important_data_elements: Vec<usize>,
    /// Data elements holding unimportant data, ascending.
    pub unimportant_data_elements: Vec<usize>,
    /// The merged encode program (see [`EncodeOp`]). Ops are ordered so
    /// that every parity is fully accumulated before any later op reads
    /// it (none do today — all sources are data nodes).
    pub encode_ops: Vec<EncodeOp>,
}

impl ApproxLayout {
    /// Elements per node.
    pub fn elements_per_node(&self) -> usize {
        self.rows * self.sub
    }

    /// Global element index of `(node, row, slot)`.
    pub fn element(&self, node: usize, row: usize, slot: usize) -> usize {
        debug_assert!(row < self.rows && slot < self.sub);
        node * self.elements_per_node() + row * self.sub + slot
    }

    /// Inverse of [`ApproxLayout::element`].
    pub fn locate(&self, element: usize) -> (usize, usize, usize) {
        let epn = self.elements_per_node();
        let node = element / epn;
        let within = element % epn;
        (node, within / self.sub, within % self.sub)
    }

    /// `true` if the element carries important data.
    pub fn is_important_element(&self, element: usize) -> bool {
        // Both vectors are sorted; binary search keeps hot paths cheap.
        self.important_data_elements.binary_search(&element).is_ok()
    }
}

/// Builds the complete layout for the given parameters and family.
pub fn build(params: ApprParams, family: BaseFamily) -> Result<ApproxLayout, EcError> {
    match family {
        BaseFamily::Rs | BaseFamily::Lrc => build_gf(params, family),
        BaseFamily::Star | BaseFamily::Tip => build_xor(params, family),
    }
}

/// Local and global coefficient rows for the GF families.
fn gf_coefficients(
    params: &ApprParams,
    family: BaseFamily,
) -> Result<(GfMatrix, GfMatrix), EcError> {
    let (k, r, g) = (params.k, params.r, params.g);
    match family {
        BaseFamily::Rs => {
            let gen = systematic_vandermonde(k, r + g)
                .map_err(|e| EcError::InvalidParameters(e.to_string()))?;
            let local = gen.select_rows(&(k..k + r).collect::<Vec<_>>());
            let global = gen.select_rows(&(k + r..k + r + g).collect::<Vec<_>>());
            Ok((local, global))
        }
        BaseFamily::Lrc => {
            // r balanced XOR groups.
            let mut local = GfMatrix::zero(r, k);
            let base = k / r;
            let extra = k % r;
            let mut next = 0;
            for gi in 0..r {
                let size = base + usize::from(gi < extra);
                for j in next..next + size {
                    local.set(gi, j, apec_gf::Gf8::ONE);
                }
                next += size;
            }
            let global = cauchy(g, k).map_err(|e| EcError::InvalidParameters(e.to_string()))?;
            Ok((local, global))
        }
        // panic-ok: build() dispatches on family, XOR never reaches here
        _ => unreachable!("gf_coefficients called for XOR family"),
    }
}

fn build_gf(params: ApprParams, family: BaseFamily) -> Result<ApproxLayout, EcError> {
    let (k, r, g, h) = (params.k, params.r, params.g, params.h);
    let (local, global) = gf_coefficients(&params, family)?;
    let rows = 1usize;
    let sub = params.sub_slots();
    let n = params.total_nodes();
    let epn = rows * sub;
    let elem = |node: usize, slot: usize| node * epn + slot;

    let mut parity_elements = Vec::new();
    let mut parity_support: Vec<Vec<(u8, usize)>> = Vec::new();

    // Local parities: stripe s, parity i, every sub-slot.
    for s in 0..h {
        for i in 0..r {
            let pnode = params.local_parity_node(s, i);
            for slot in 0..sub {
                parity_elements.push(elem(pnode, slot));
                let support: Vec<(u8, usize)> = (0..k)
                    .filter_map(|j| {
                        let c = local.get(i, j).value();
                        (c != 0).then(|| (c, elem(params.data_node(s, j), slot)))
                    })
                    .collect();
                parity_support.push(support);
            }
        }
    }

    // Global parities over important data.
    for t in 0..g {
        let gnode = params.global_node(t);
        for slot in 0..sub {
            parity_elements.push(elem(gnode, slot));
            let source_stripe = match params.structure {
                Structure::Even => slot, // sub == h: slot σ holds stripe σ's share
                Structure::Uneven => 0,
            };
            let important_slot = 0; // important data lives in slot 0
            let support: Vec<(u8, usize)> = (0..k)
                .filter_map(|j| {
                    let c = global.get(t, j).value();
                    (c != 0)
                        .then(|| (c, elem(params.data_node(source_stripe, j), important_slot)))
                })
                .collect();
            parity_support.push(support);
        }
    }

    let data_elements: Vec<usize> = (0..params.data_nodes())
        .flat_map(|node| (0..epn).map(move |e| node * epn + e))
        .collect();

    let spec = GfSpec {
        n_cols: n,
        rows_per_col: epn,
        data_elements,
        parity_elements,
        parity_support,
    };
    spec.validate().map_err(EcError::InvalidParameters)?;

    // Merged encode program: local parities as whole-shard MACs, globals
    // as per-slot MACs over the important slot.
    let mut encode_ops = Vec::new();
    for s in 0..h {
        for i in 0..r {
            let pnode = params.local_parity_node(s, i);
            for j in 0..k {
                let c = local.get(i, j).value();
                if c != 0 {
                    encode_ops.push(EncodeOp {
                        coeff: c,
                        src_node: params.data_node(s, j),
                        src_elem: 0,
                        dst_node: pnode,
                        dst_elem: 0,
                        count: epn,
                    });
                }
            }
        }
    }
    for t in 0..g {
        let gnode = params.global_node(t);
        for slot in 0..sub {
            let source_stripe = match params.structure {
                Structure::Even => slot,
                Structure::Uneven => 0,
            };
            for j in 0..k {
                let c = global.get(t, j).value();
                if c != 0 {
                    encode_ops.push(EncodeOp {
                        coeff: c,
                        src_node: params.data_node(source_stripe, j),
                        src_elem: 0,
                        dst_node: gnode,
                        dst_elem: slot,
                        count: 1,
                    });
                }
            }
        }
    }

    let layout = ApproxLayout {
        params,
        family,
        rows,
        sub,
        p: 0,
        important_data_elements: important_elements(&params, rows, sub),
        unimportant_data_elements: unimportant_elements(&params, rows, sub),
        engine: Engine::Gf(spec),
        encode_ops,
    };
    Ok(layout)
}

fn build_xor(params: ApprParams, family: BaseFamily) -> Result<ApproxLayout, EcError> {
    let (k, r, g, h) = (params.k, params.r, params.g, params.h);
    let p = next_prime_at_least(k.max(3));
    let slopes: Vec<usize> = match family {
        BaseFamily::Star => vec![0, 1, p - 1],
        BaseFamily::Tip => vec![0, 1, 2],
        // panic-ok: build() dispatches on family, GF never reaches here
        _ => unreachable!("build_xor called for GF family"),
    };
    let local_slopes = &slopes[..r];
    let global_slopes = &slopes[r..r + g];

    let rows = p - 1;
    let sub = params.sub_slots();
    let n = params.total_nodes();
    let epn = rows * sub;
    let elem = |node: usize, row: usize, slot: usize| node * epn + row * sub + slot;

    let mut parity_elements = Vec::new();
    let mut parity_support: Vec<Vec<usize>> = Vec::new();

    // Local parities.
    for s in 0..h {
        for (i, &sl) in local_slopes.iter().enumerate() {
            let pnode = params.local_parity_node(s, i);
            for t in 0..rows {
                for slot in 0..sub {
                    parity_elements.push(elem(pnode, t, slot));
                    let support: Vec<usize> = slope_class_cells(p, k, sl, t, sl != 0)
                        .into_iter()
                        .map(|(row, j)| elem(params.data_node(s, j), row, slot))
                        .collect();
                    parity_support.push(support);
                }
            }
        }
    }

    // Global parities over important data only.
    for (gi, &gs) in global_slopes.iter().enumerate() {
        let gnode = params.global_node(gi);
        for t in 0..rows {
            for slot in 0..sub {
                parity_elements.push(elem(gnode, t, slot));
                let source_stripe = match params.structure {
                    Structure::Even => slot,
                    Structure::Uneven => 0,
                };
                let support: Vec<usize> = slope_class_cells(p, k, gs, t, gs != 0)
                    .into_iter()
                    .map(|(row, j)| elem(params.data_node(source_stripe, j), row, 0))
                    .collect();
                parity_support.push(support);
            }
        }
    }

    let data_elements: Vec<usize> = (0..params.data_nodes())
        .flat_map(|node| (0..epn).map(move |e| node * epn + e))
        .collect();

    let spec = XorCodeSpec {
        n_cols: n,
        rows_per_col: epn,
        data_elements,
        parity_elements,
        parity_support,
    };
    spec.validate().map_err(EcError::InvalidParameters)?;

    // Merged encode program: local parity cells span all importance slots
    // at once (the local equations are slot-uniform), globals stay at
    // single-slot granularity.
    let mut encode_ops = Vec::new();
    for s in 0..h {
        for (i, &sl) in local_slopes.iter().enumerate() {
            let pnode = params.local_parity_node(s, i);
            for t in 0..rows {
                for (row, j) in slope_class_cells(p, k, sl, t, sl != 0) {
                    encode_ops.push(EncodeOp {
                        coeff: 1,
                        src_node: params.data_node(s, j),
                        src_elem: row * sub,
                        dst_node: pnode,
                        dst_elem: t * sub,
                        count: sub,
                    });
                }
            }
        }
    }
    for (gi, &gs) in global_slopes.iter().enumerate() {
        let gnode = params.global_node(gi);
        for t in 0..rows {
            for slot in 0..sub {
                let source_stripe = match params.structure {
                    Structure::Even => slot,
                    Structure::Uneven => 0,
                };
                for (row, j) in slope_class_cells(p, k, gs, t, gs != 0) {
                    encode_ops.push(EncodeOp {
                        coeff: 1,
                        src_node: params.data_node(source_stripe, j),
                        src_elem: row * sub,
                        dst_node: gnode,
                        dst_elem: t * sub + slot,
                        count: 1,
                    });
                }
            }
        }
    }

    let layout = ApproxLayout {
        params,
        family,
        rows,
        sub,
        p,
        important_data_elements: important_elements(&params, rows, sub),
        unimportant_data_elements: unimportant_elements(&params, rows, sub),
        engine: Engine::Xor(spec),
        encode_ops,
    };
    Ok(layout)
}

fn important_elements(params: &ApprParams, rows: usize, sub: usize) -> Vec<usize> {
    let epn = rows * sub;
    let mut out = Vec::new();
    for node in 0..params.data_nodes() {
        match params.structure {
            Structure::Even => {
                // Slot 0 of every element row.
                for row in 0..rows {
                    out.push(node * epn + row * sub);
                }
            }
            Structure::Uneven => {
                if params.stripe_of(node) == Some(0) {
                    out.extend(node * epn..(node + 1) * epn);
                }
            }
        }
    }
    out
}

fn unimportant_elements(params: &ApprParams, rows: usize, sub: usize) -> Vec<usize> {
    let epn = rows * sub;
    let important = important_elements(params, rows, sub);
    let mut out = Vec::new();
    for node in 0..params.data_nodes() {
        for e in node * epn..(node + 1) * epn {
            if important.binary_search(&e).is_err() {
                out.push(e);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(family: BaseFamily, structure: Structure, k: usize, r: usize, g: usize, h: usize) -> ApproxLayout {
        let params = ApprParams::new(k, r, g, h, structure, family).unwrap();
        build(params, family).unwrap()
    }

    #[test]
    fn all_families_and_structures_build() {
        for family in [BaseFamily::Rs, BaseFamily::Lrc, BaseFamily::Star, BaseFamily::Tip] {
            for structure in [Structure::Even, Structure::Uneven] {
                for (r, g) in [(1, 2), (2, 1)] {
                    let l = layout(family, structure, 5, r, g, 4);
                    match &l.engine {
                        Engine::Xor(s) => s.validate().unwrap(),
                        Engine::Gf(s) => s.validate().unwrap(),
                    }
                }
            }
        }
    }

    #[test]
    fn element_indexing_round_trips() {
        let l = layout(BaseFamily::Star, Structure::Even, 5, 2, 1, 4);
        assert_eq!(l.p, 5);
        assert_eq!(l.rows, 4);
        assert_eq!(l.sub, 4);
        for node in [0, 7, 20] {
            for row in 0..l.rows {
                for slot in 0..l.sub {
                    let e = l.element(node, row, slot);
                    assert_eq!(l.locate(e), (node, row, slot));
                }
            }
        }
    }

    #[test]
    fn importance_partition_is_exact() {
        for structure in [Structure::Even, Structure::Uneven] {
            let l = layout(BaseFamily::Rs, structure, 4, 1, 2, 3);
            let total_data = l.params.data_nodes() * l.elements_per_node();
            assert_eq!(
                l.important_data_elements.len() + l.unimportant_data_elements.len(),
                total_data
            );
            // The important ratio is exactly 1/h.
            assert_eq!(
                l.important_data_elements.len() * l.params.h,
                total_data,
                "important fraction must be 1/h under {structure}"
            );
            for &e in &l.important_data_elements {
                assert!(l.is_important_element(e));
            }
            for &e in &l.unimportant_data_elements {
                assert!(!l.is_important_element(e));
            }
        }
    }

    #[test]
    fn uneven_importance_sits_in_stripe_zero() {
        let l = layout(BaseFamily::Tip, Structure::Uneven, 5, 1, 2, 4);
        for &e in &l.important_data_elements {
            let (node, _, _) = l.locate(e);
            assert_eq!(l.params.stripe_of(node), Some(0));
        }
    }

    #[test]
    fn rs_uneven_important_stripe_is_full_rs_codeword() {
        // The important stripe + globals must form RS(k, r+g): any r+g
        // column erasures among those nodes are recoverable.
        let l = layout(BaseFamily::Rs, Structure::Uneven, 4, 1, 2, 3);
        let Engine::Gf(spec) = &l.engine else { panic!() };
        let p = &l.params;
        let members: Vec<usize> = (0..4)
            .map(|j| p.data_node(0, j))
            .chain([p.local_parity_node(0, 0), p.global_node(0), p.global_node(1)])
            .collect();
        // all C(7,3) subsets of the codeword must be recoverable
        for a in 0..7 {
            for b in a + 1..7 {
                for c in b + 1..7 {
                    let cols = [members[a], members[b], members[c]];
                    let erased = spec.erase_columns(&cols);
                    assert!(
                        spec.can_recover(&erased),
                        "pattern {cols:?} should be recoverable"
                    );
                }
            }
        }
    }

    #[test]
    fn any_r_node_failures_recover_everything() {
        // The unimportant-data guarantee: any r failures are fully
        // recoverable. LRC's XOR group parities only guarantee one
        // arbitrary failure (the paper's footnote on APPR.LRC), so it is
        // exercised at r = 1 by the next test instead.
        for family in [BaseFamily::Rs, BaseFamily::Star, BaseFamily::Tip] {
            for structure in [Structure::Even, Structure::Uneven] {
                let l = layout(family, structure, 4, 2, 1, 3);
                let n = l.params.total_nodes();
                for a in 0..n {
                    for b in a + 1..n {
                        let ok = match &l.engine {
                            Engine::Xor(s) => s.can_recover(&s.erase_columns(&[a, b])),
                            Engine::Gf(s) => {
                                let erased = s.erase_columns(&[a, b]);
                                s.can_recover(&erased)
                            }
                        };
                        assert!(ok, "{family:?}/{structure:?} failed pattern [{a},{b}]");
                    }
                }
            }
        }
    }

    #[test]
    fn lrc_single_failure_always_recovers() {
        for structure in [Structure::Even, Structure::Uneven] {
            let l = layout(BaseFamily::Lrc, structure, 4, 1, 2, 3);
            let Engine::Gf(spec) = &l.engine else { panic!() };
            let n = l.params.total_nodes();
            for a in 0..n {
                let erased = spec.erase_columns(&[a]);
                assert!(spec.can_recover(&erased), "{structure:?} failed [{a}]");
            }
        }
    }
}
