//! Approximate Code — a cost-effective erasure-coding framework for tiered
//! video storage (ICPP 2019).
//!
//! The framework distinguishes *important* data (e.g. H.264 I-frames) from
//! *unimportant* data (P/B-frames) and protects them differently:
//!
//! * every local stripe of `k` data nodes gets `r` local parities covering
//!   **all** its data,
//! * `g` extra global parities cover only the **important** data (a `1/h`
//!   fraction of the total),
//!
//! so important data tolerates `r + g` arbitrary node failures (3 in the
//! paper's 3DFT setting) while the overall parity count drops from
//! `3·h` nodes to `r·h + g`.
//!
//! # Pipeline
//!
//! 1. [`ApprParams`]/[`BaseFamily`] describe the code: `APPR.RS`,
//!    `APPR.LRC`, `APPR.STAR` or `APPR.TIP`, with the paper's
//!    `(k, r, g, h, structure)` notation.
//! 2. [`builder::build`] performs *code segmentation* and *code
//!    generation*, emitting element-level equations (XOR for the
//!    STAR/TIP families, GF(2^8) for RS/LRC).
//! 3. [`ApproxCode`] encodes stripes, reconstructs failures — fully via
//!    the standard [`apec_ec::ErasureCode`] trait, or as far as the
//!    pattern allows via [`ApproxCode::reconstruct_tiered`], which reports
//!    exactly which byte ranges were lost for approximate (video
//!    interpolation) recovery.
//! 4. [`tiered`] packs important/unimportant byte streams into stripes and
//!    maps damage reports back to stream coordinates.
//!
//! ```
//! use approx_code::{ApproxCode, BaseFamily, Structure};
//! use apec_ec::ErasureCode;
//!
//! // APPR.RS(4,1,2,3,Uneven): 3 stripes of 4 data + 1 local parity,
//! // plus 2 global parities guarding stripe 0 (the important data).
//! let code = ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Uneven).unwrap();
//! assert_eq!(code.total_nodes(), 17);
//!
//! let shard = vec![0u8; code.shard_alignment() * 16];
//! let data: Vec<Vec<u8>> = (0..code.data_nodes()).map(|_| shard.clone()).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
//! let parity = code.encode(&refs).unwrap();
//! assert_eq!(parity.len(), 5); // 3 local + 2 global parities
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod code;
pub mod gfspec;
mod params;
pub mod tiered;

pub use code::{ApproxCode, PlanBundle, TieredReport};
pub use params::{ApprParams, BaseFamily, Structure};
