//! Declarative GF(2^8)-linear code specifications.
//!
//! The GF analog of [`apec_bitmatrix::XorCodeSpec`]: a code is a list of
//! parity elements, each defined as a GF(2^8)-linear combination of other
//! elements. Encoding follows the definitions; decoding builds the linear
//! system for an erasure pattern, eliminates it symbolically once, and
//! compiles a [`GfRecoveryPlan`] replayed over data blocks with the fused
//! multiply-accumulate kernels. The Approximate-Code framework uses this
//! engine for its RS- and LRC-based instantiations.

use apec_gf::{mul_slice_xor, GfMatrix, Gf8};
use std::collections::HashSet;
use std::fmt;

/// Errors from the symbolic GF solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfSolveError {
    /// An element index exceeded the spec size.
    ElementOutOfRange {
        /// The offending index.
        index: usize,
        /// Total number of elements.
        total: usize,
    },
}

impl fmt::Display for GfSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfSolveError::ElementOutOfRange { index, total } => {
                write!(f, "element index {index} out of range (total {total})")
            }
        }
    }
}

impl std::error::Error for GfSolveError {}

/// One recovery step: `target = Σ coeff · source` over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfRecoveryStep {
    /// The erased element to rebuild.
    pub target: usize,
    /// `(coefficient, surviving element)` terms.
    pub sources: Vec<(u8, usize)>,
}

/// A compiled plan rebuilding erased elements from surviving ones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GfRecoveryPlan {
    /// Independent steps (each target depends only on surviving elements).
    pub steps: Vec<GfRecoveryStep>,
}

impl GfRecoveryPlan {
    /// Total number of multiply-accumulate source terms — the plan's
    /// computational cost in element units.
    pub fn term_cost(&self) -> usize {
        self.steps.iter().map(|s| s.sources.len()).sum()
    }

    /// Replays the plan over real blocks (`elements[i]` = block of element
    /// `i`); targets are overwritten.
    ///
    /// # Panics
    /// Panics on inconsistent block lengths — a caller bug.
    pub fn apply(&self, elements: &mut [Vec<u8>]) {
        for step in &self.steps {
            let len = elements
                .get(step.sources.first().map(|&(_, e)| e).unwrap_or(step.target))
                .map(Vec::len)
                .unwrap_or(0);
            // alloc-ok: solver-facing reference spec; the streaming path uses apply_into
            let mut acc = vec![0u8; len];
            for &(c, src) in &step.sources {
                mul_slice_xor(c, &elements[src], &mut acc)
                    // panic-ok: documented misuse panic — callers pass equal-sized element blocks
                    .expect("inconsistent element block sizes");
            }
            elements[step.target] = acc;
        }
    }
}

/// A GF(2^8)-linear systematic code over abstract elements.
///
/// Mirrors [`apec_bitmatrix::XorCodeSpec`]: `n_cols` node columns of
/// `rows_per_col` elements each; `parity_support[i]` lists the
/// `(coefficient, element)` terms summing to `parity_elements[i]`.
#[derive(Debug, Clone)]
pub struct GfSpec {
    /// Number of node columns.
    pub n_cols: usize,
    /// Elements per column.
    pub rows_per_col: usize,
    /// Elements carrying user data.
    pub data_elements: Vec<usize>,
    /// Parity elements in encoding order.
    pub parity_elements: Vec<usize>,
    /// Definition of each parity element.
    pub parity_support: Vec<Vec<(u8, usize)>>,
}

impl GfSpec {
    /// Total number of elements.
    pub fn total_elements(&self) -> usize {
        self.n_cols * self.rows_per_col
    }

    /// The elements of a column.
    pub fn column_elements(&self, col: usize) -> Vec<usize> {
        (0..self.rows_per_col)
            .map(|r| col * self.rows_per_col + r)
            .collect()
    }

    /// Expands failed columns to erased elements.
    pub fn erase_columns(&self, cols: &[usize]) -> Vec<usize> {
        cols.iter()
            .flat_map(|&c| self.column_elements(c))
            .collect()
    }

    /// Structural validation (same rules as the XOR spec, plus non-zero
    /// coefficients).
    pub fn validate(&self) -> Result<(), String> {
        let total = self.total_elements();
        if self.parity_elements.len() != self.parity_support.len() {
            return Err("parity/support length mismatch".into());
        }
        let data: HashSet<_> = self.data_elements.iter().copied().collect();
        let parity: HashSet<_> = self.parity_elements.iter().copied().collect();
        if data.len() != self.data_elements.len() || parity.len() != self.parity_elements.len() {
            return Err("duplicate elements".into());
        }
        if data.intersection(&parity).next().is_some() {
            return Err("element is both data and parity".into());
        }
        if data.len() + parity.len() != total {
            return Err(format!(
                "{} data + {} parity != {total} total",
                data.len(),
                parity.len()
            ));
        }
        for (i, support) in self.parity_support.iter().enumerate() {
            if support.is_empty() {
                return Err(format!("parity {i} has empty support"));
            }
            let mut seen = HashSet::new();
            for &(c, e) in support {
                if c == 0 {
                    return Err(format!("parity {i} has zero coefficient on {e}"));
                }
                if e >= total {
                    return Err(format!("parity {i} references out-of-range element {e}"));
                }
                if !seen.insert(e) {
                    return Err(format!("parity {i} references element {e} twice"));
                }
                if parity.contains(&e) {
                    // panic-ok: guarded by the contains() check on the line above
                    let pos = self.parity_elements.iter().position(|&p| p == e).unwrap();
                    if pos >= i {
                        return Err(format!("parity {i} references later parity {e}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Encodes in place: computes every parity element from the data
    /// already present.
    ///
    /// # Panics
    /// Panics on inconsistent block sizes or wrong element count.
    pub fn encode(&self, elements: &mut [Vec<u8>]) {
        assert_eq!(elements.len(), self.total_elements(), "element count mismatch");
        for (i, &p) in self.parity_elements.iter().enumerate() {
            let support = &self.parity_support[i];
            let len = elements[support[0].1].len();
            // alloc-ok: legacy Vec-returning encode; reached only via the compatibility fallback
            let mut acc = vec![0u8; len];
            for &(c, src) in support {
                mul_slice_xor(c, &elements[src], &mut acc)
                    // panic-ok: acc is allocated to the support's block length above
                    .expect("inconsistent element block sizes");
            }
            elements[p] = acc;
        }
    }

    /// Number of multiply-accumulate terms in a full encode.
    pub fn encode_term_cost(&self) -> usize {
        self.parity_support.iter().map(|s| s.len()).sum()
    }

    /// Symbolically solves an erasure pattern, returning the plan for every
    /// solvable erased element and the list of unsolvable ones.
    pub fn partial_recovery_plan(
        &self,
        erased: &[usize],
    ) -> Result<(GfRecoveryPlan, Vec<usize>), GfSolveError> {
        let total = self.total_elements();
        for &e in erased {
            if e >= total {
                return Err(GfSolveError::ElementOutOfRange { index: e, total });
            }
        }
        if erased.is_empty() {
            return Ok((GfRecoveryPlan::default(), Vec::new()));
        }

        let mut unknown_col = vec![usize::MAX; total];
        let mut unknowns: Vec<usize> = erased.to_vec();
        unknowns.sort_unstable();
        unknowns.dedup();
        for (i, &e) in unknowns.iter().enumerate() {
            unknown_col[e] = i;
        }
        let u = unknowns.len();
        let n_eq = self.parity_elements.len();

        // Augmented system [unknown | known], known side indexed by raw id.
        let mut m = GfMatrix::zero(n_eq, u + total);
        for (row, (&p, support)) in self
            .parity_elements
            .iter()
            .zip(&self.parity_support)
            .enumerate()
        {
            for &(c, e) in support.iter().chain(std::iter::once(&(1u8, p))) {
                let col = if unknown_col[e] != usize::MAX {
                    unknown_col[e]
                } else {
                    u + e
                };
                let cur = m.get(row, col);
                m.set(row, col, cur + Gf8(c));
            }
        }

        // Gauss-Jordan on the unknown columns.
        let mut rank = 0;
        for col in 0..u {
            let Some(pivot) = (rank..n_eq).find(|&r| !m.get(r, col).is_zero()) else {
                continue;
            };
            m.swap_rows(pivot, rank);
            let inv = m.get(rank, col).inverse().expect("pivot nonzero"); // panic-ok: `find` selected a row with a nonzero entry
            m.scale_row(rank, inv);
            for r in 0..n_eq {
                if r != rank && !m.get(r, col).is_zero() {
                    let f = m.get(r, col);
                    m.add_scaled_row(rank, r, f);
                }
            }
            rank += 1;
        }

        let mut steps = Vec::new();
        let mut solved = vec![false; u];
        for r in 0..rank.min(n_eq) {
            // Identify the unknown support of this row.
            let mut pivot_col = None;
            let mut multiple = false;
            for c in 0..u {
                if !m.get(r, c).is_zero() {
                    if pivot_col.is_some() {
                        multiple = true;
                        break;
                    }
                    pivot_col = Some(c);
                }
            }
            let Some(pc) = pivot_col else { continue };
            if multiple {
                continue;
            }
            // Row reads: unknown + Σ coeff·known = 0 → unknown = Σ coeff·known
            // (characteristic 2 absorbs the sign).
            let mut sources = Vec::new();
            for c in u..u + total {
                let coeff = m.get(r, c);
                if !coeff.is_zero() {
                    sources.push((coeff.value(), c - u));
                }
            }
            if sources.is_empty() {
                continue;
            }
            steps.push(GfRecoveryStep {
                target: unknowns[pc],
                sources,
            });
            solved[pc] = true;
        }

        let unsolved = unknowns
            .iter()
            .zip(&solved)
            .filter(|(_, &s)| !s)
            .map(|(&e, _)| e)
            .collect();
        Ok((GfRecoveryPlan { steps }, unsolved))
    }

    /// `true` when every element of the erasure pattern is recoverable.
    pub fn can_recover(&self, erased: &[usize]) -> bool {
        self.partial_recovery_plan(erased)
            .map(|(_, unsolved)| unsolved.is_empty())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_gf::systematic_vandermonde;
    use rand::prelude::*;

    /// RS(3,2) expressed as a GfSpec with one element per column.
    fn rs32_spec() -> GfSpec {
        let g = systematic_vandermonde(3, 2).unwrap();
        let parity_support = (0..2)
            .map(|pr| {
                (0..3)
                    .map(|c| (g.get(3 + pr, c).value(), c))
                    .collect::<Vec<_>>()
            })
            .collect();
        GfSpec {
            n_cols: 5,
            rows_per_col: 1,
            data_elements: vec![0, 1, 2],
            parity_elements: vec![3, 4],
            parity_support,
        }
    }

    fn encode_random(spec: &GfSpec, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut elems = vec![vec![0u8; len]; spec.total_elements()];
        for &d in &spec.data_elements {
            rng.fill(elems[d].as_mut_slice());
        }
        spec.encode(&mut elems);
        elems
    }

    #[test]
    fn spec_validates() {
        rs32_spec().validate().unwrap();
        let mut bad = rs32_spec();
        bad.parity_support[0][0].0 = 0;
        assert!(bad.validate().is_err());
        let mut bad = rs32_spec();
        bad.parity_support[0].push((1, 0));
        assert!(bad.validate().is_err(), "duplicate term");
    }

    #[test]
    fn all_double_erasures_recover() {
        let spec = rs32_spec();
        let full = encode_random(&spec, 32, 1);
        for a in 0..5 {
            for b in a + 1..5 {
                let (plan, unsolved) = spec.partial_recovery_plan(&[a, b]).unwrap();
                assert!(unsolved.is_empty(), "({a},{b}) unsolved {unsolved:?}");
                let mut damaged = full.clone();
                damaged[a] = vec![0; 32];
                damaged[b] = vec![0; 32];
                plan.apply(&mut damaged);
                assert_eq!(damaged, full, "pattern ({a},{b})");
            }
        }
    }

    #[test]
    fn triple_erasure_reports_unsolved() {
        let spec = rs32_spec();
        let (_plan, unsolved) = spec.partial_recovery_plan(&[0, 1, 2]).unwrap();
        assert_eq!(unsolved.len(), 3);
        assert!(!spec.can_recover(&[0, 1, 2]));
        assert!(spec.can_recover(&[0, 1]));
    }

    #[test]
    fn partial_recovery_solves_the_solvable_subset() {
        // Two independent RS(3,2) groups glued in one spec; kill one group
        // beyond tolerance and one group within tolerance.
        let g = systematic_vandermonde(3, 2).unwrap();
        let mk_support = |pr: usize, offset: usize| -> Vec<(u8, usize)> {
            (0..3).map(|c| (g.get(3 + pr, c).value(), offset + c)).collect()
        };
        let spec = GfSpec {
            n_cols: 10,
            rows_per_col: 1,
            data_elements: vec![0, 1, 2, 5, 6, 7],
            parity_elements: vec![3, 4, 8, 9],
            parity_support: vec![
                mk_support(0, 0),
                mk_support(1, 0),
                mk_support(0, 5),
                mk_support(1, 5),
            ],
        };
        spec.validate().unwrap();
        let full = encode_random(&spec, 16, 2);
        // Group A loses 3 (unrecoverable), group B loses 2 (recoverable).
        let erased = vec![0, 1, 2, 5, 6];
        let (plan, unsolved) = spec.partial_recovery_plan(&erased).unwrap();
        assert_eq!(unsolved, vec![0, 1, 2]);
        let mut damaged = full.clone();
        for &e in &erased {
            damaged[e] = vec![0; 16];
        }
        plan.apply(&mut damaged);
        assert_eq!(damaged[5], full[5]);
        assert_eq!(damaged[6], full[6]);
    }

    #[test]
    fn out_of_range_rejected() {
        let spec = rs32_spec();
        assert!(matches!(
            spec.partial_recovery_plan(&[77]),
            Err(GfSolveError::ElementOutOfRange { index: 77, total: 5 })
        ));
    }

    #[test]
    fn empty_erasure_is_trivial() {
        let spec = rs32_spec();
        let (plan, unsolved) = spec.partial_recovery_plan(&[]).unwrap();
        assert!(plan.steps.is_empty() && unsolved.is_empty());
        assert_eq!(plan.term_cost(), 0);
    }

    #[test]
    fn encode_term_cost_counts_terms() {
        assert_eq!(rs32_spec().encode_term_cost(), 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Random GF spec: `cols` data columns (1 element each) + 2 parity
    /// columns with random nonzero coefficients over random subsets.
    fn random_spec(cols: usize, seed: u64) -> GfSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parity_support = Vec::new();
        for _ in 0..2 {
            let mut support: Vec<(u8, usize)> = Vec::new();
            for j in 0..cols {
                if rng.random_bool(0.8) {
                    support.push((rng.random_range(1..=255u8), j));
                }
            }
            if support.is_empty() {
                support.push((1, 0));
            }
            parity_support.push(support);
        }
        GfSpec {
            n_cols: cols + 2,
            rows_per_col: 1,
            data_elements: (0..cols).collect(),
            parity_elements: vec![cols, cols + 1],
            parity_support,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness of the GF solver mirrors the XOR solver's guarantee:
        /// every claimed recovery is byte-exact and never reads erased
        /// elements.
        #[test]
        fn gf_partial_plans_are_always_sound(
            seed: u64,
            cols in 2usize..8,
            n_erased in 1usize..5,
        ) {
            let spec = random_spec(cols, seed);
            prop_assume!(spec.validate().is_ok());

            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let block = 12usize;
            let mut elements = vec![vec![0u8; block]; spec.total_elements()];
            for &d in &spec.data_elements {
                rng.fill(elements[d].as_mut_slice());
            }
            spec.encode(&mut elements);
            let truth = elements.clone();

            let mut all: Vec<usize> = (0..spec.total_elements()).collect();
            all.shuffle(&mut rng);
            let erased: Vec<usize> = all[..n_erased.min(all.len())].to_vec();

            let (plan, unsolved) = spec.partial_recovery_plan(&erased).unwrap();
            let mut accounted: Vec<usize> = plan
                .steps
                .iter()
                .map(|s| s.target)
                .chain(unsolved.iter().copied())
                .collect();
            accounted.sort_unstable();
            let mut want = erased.clone();
            want.sort_unstable();
            prop_assert_eq!(accounted, want);

            for step in &plan.steps {
                for &(_, s) in &step.sources {
                    prop_assert!(!erased.contains(&s));
                }
            }

            let mut damaged = truth.clone();
            for &e in &erased {
                damaged[e] = vec![0xEE; block];
            }
            plan.apply(&mut damaged);
            for step in &plan.steps {
                prop_assert_eq!(&damaged[step.target], &truth[step.target]);
            }
        }

        /// With two independent random parities, any single erasure whose
        /// element appears (with nonzero coefficient) in a surviving parity
        /// of full support is recoverable; in particular erasing a parity
        /// itself always is.
        #[test]
        fn gf_parity_self_recovery(seed: u64, cols in 2usize..8) {
            let spec = random_spec(cols, seed);
            prop_assume!(spec.validate().is_ok());
            prop_assert!(spec.can_recover(&[cols]));
            prop_assert!(spec.can_recover(&[cols + 1]));
        }
    }
}
