//! Parameters, node layout and importance geometry of an Approximate Code.
//!
//! The paper's construction (§3.1): `APPR.Code(k, r, g, h, Structure)`
//! arranges `N = h·(k + r) + g` nodes as `h` local stripes of `k` data +
//! `r` local-parity nodes, plus `g` global-parity nodes. A fraction `1/h`
//! of the data is *important*:
//!
//! * [`Structure::Even`] — every data node stores `1/h` important data
//!   (its first sub-slot), balancing load;
//! * [`Structure::Uneven`] — stripe 0's data nodes are entirely important,
//!   maximising reliability (§3.4).

use apec_ec::EcError;
use std::fmt;

/// How important data is distributed across data nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Important data spread uniformly: `1/h` of every data node.
    Even,
    /// Important data concentrated in the first local stripe.
    Uneven,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Structure::Even => write!(f, "Even"),
            Structure::Uneven => write!(f, "Uneven"),
        }
    }
}

/// The erasure-code family an Approximate Code is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseFamily {
    /// Reed-Solomon: local/global parities are rows of one systematic
    /// `RS(k, r+g)` generator, so important data is protected by a true
    /// MDS code.
    Rs,
    /// LRC-style: `r` XOR local group parities per stripe plus `g` Cauchy
    /// global parities (important-data tolerance `1 + g`, like the paper's
    /// footnote on APPR.LRC).
    Lrc,
    /// STAR family (slopes `{0, 1, −1}` over a prime `p ≥ k`).
    Star,
    /// TIP-like family (slopes `{0, 1, 2}` over a prime `p ≥ k`).
    Tip,
}

impl fmt::Display for BaseFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseFamily::Rs => write!(f, "RS"),
            BaseFamily::Lrc => write!(f, "LRC"),
            BaseFamily::Star => write!(f, "STAR"),
            BaseFamily::Tip => write!(f, "TIP"),
        }
    }
}

/// Parameters of an `APPR.Code(k, r, g, h, structure)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApprParams {
    /// Data nodes per local stripe.
    pub k: usize,
    /// Local parity nodes per stripe.
    pub r: usize,
    /// Global parity nodes.
    pub g: usize,
    /// Number of local stripes; the important-data ratio is `1/h`.
    pub h: usize,
    /// Distribution of important data.
    pub structure: Structure,
}

impl ApprParams {
    /// Creates and validates the parameters against a base family.
    pub fn new(
        k: usize,
        r: usize,
        g: usize,
        h: usize,
        structure: Structure,
        family: BaseFamily,
    ) -> Result<Self, EcError> {
        if k == 0 || r == 0 || g == 0 || h == 0 {
            return Err(EcError::InvalidParameters(format!(
                "APPR needs k, r, g, h >= 1, got ({k},{r},{g},{h})"
            )));
        }
        match family {
            BaseFamily::Rs => {
                if k + r + g > 255 {
                    return Err(EcError::InvalidParameters(format!(
                        "RS base: k + r + g = {} exceeds 255",
                        k + r + g
                    )));
                }
            }
            BaseFamily::Lrc => {
                if r > k {
                    return Err(EcError::InvalidParameters(format!(
                        "LRC base: r = {r} local groups exceed k = {k} data nodes"
                    )));
                }
                if k + g > 256 {
                    return Err(EcError::InvalidParameters(format!(
                        "LRC base: k + g = {} exceeds 256",
                        k + g
                    )));
                }
            }
            BaseFamily::Star | BaseFamily::Tip => {
                if r + g > 3 {
                    return Err(EcError::InvalidParameters(format!(
                        "{family:?} base supports r + g <= 3, got {}",
                        r + g
                    )));
                }
            }
        }
        Ok(ApprParams {
            k,
            r,
            g,
            h,
            structure,
        })
    }

    /// Total nodes: `N = h·(k + r) + g`.
    pub fn total_nodes(&self) -> usize {
        self.h * (self.k + self.r) + self.g
    }

    /// Total data nodes: `h·k`.
    pub fn data_nodes(&self) -> usize {
        self.h * self.k
    }

    /// Total parity nodes: `h·r + g`.
    pub fn parity_nodes(&self) -> usize {
        self.h * self.r + self.g
    }

    /// Node index of data node `j` of stripe `s` (stripe-major layout:
    /// all data nodes first, then all local parities, then globals).
    pub fn data_node(&self, stripe: usize, j: usize) -> usize {
        debug_assert!(stripe < self.h && j < self.k);
        stripe * self.k + j
    }

    /// Node index of local parity `i` of stripe `s`.
    pub fn local_parity_node(&self, stripe: usize, i: usize) -> usize {
        debug_assert!(stripe < self.h && i < self.r);
        self.data_nodes() + stripe * self.r + i
    }

    /// Node index of global parity `t`.
    pub fn global_node(&self, t: usize) -> usize {
        debug_assert!(t < self.g);
        self.data_nodes() + self.h * self.r + t
    }

    /// Which stripe a node belongs to (`None` for global parities).
    pub fn stripe_of(&self, node: usize) -> Option<usize> {
        let dn = self.data_nodes();
        if node < dn {
            Some(node / self.k)
        } else if node < dn + self.h * self.r {
            Some((node - dn) / self.r)
        } else {
            None
        }
    }

    /// `true` when `node` is a data node.
    pub fn is_data_node(&self, node: usize) -> bool {
        node < self.data_nodes()
    }

    /// `true` when `node` is a global parity node.
    pub fn is_global_node(&self, node: usize) -> bool {
        node >= self.data_nodes() + self.h * self.r && node < self.total_nodes()
    }

    /// The number of importance sub-slots per element row: `h` under Even
    /// (slot 0 is important), 1 under Uneven.
    pub fn sub_slots(&self) -> usize {
        match self.structure {
            Structure::Even => self.h,
            Structure::Uneven => 1,
        }
    }

    /// Whether the given data node carries any important data.
    pub fn node_has_important_data(&self, node: usize) -> bool {
        if !self.is_data_node(node) {
            return false;
        }
        match self.structure {
            Structure::Even => true,
            Structure::Uneven => self.stripe_of(node) == Some(0),
        }
    }

    /// Storage overhead `((k+r)h + g)/(kh)` (paper Table 3).
    pub fn storage_overhead(&self) -> f64 {
        self.total_nodes() as f64 / self.data_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(structure: Structure) -> ApprParams {
        ApprParams::new(4, 1, 2, 3, structure, BaseFamily::Rs).unwrap()
    }

    #[test]
    fn validation_rules() {
        assert!(ApprParams::new(0, 1, 2, 3, Structure::Even, BaseFamily::Rs).is_err());
        assert!(ApprParams::new(4, 0, 2, 3, Structure::Even, BaseFamily::Rs).is_err());
        assert!(ApprParams::new(4, 1, 0, 3, Structure::Even, BaseFamily::Rs).is_err());
        assert!(ApprParams::new(4, 1, 2, 0, Structure::Even, BaseFamily::Rs).is_err());
        assert!(ApprParams::new(250, 3, 3, 2, Structure::Even, BaseFamily::Rs).is_err());
        assert!(ApprParams::new(4, 5, 1, 2, Structure::Even, BaseFamily::Lrc).is_err());
        assert!(ApprParams::new(4, 2, 2, 2, Structure::Even, BaseFamily::Star).is_err());
        assert!(ApprParams::new(4, 2, 1, 2, Structure::Even, BaseFamily::Star).is_ok());
        assert!(ApprParams::new(4, 1, 2, 2, Structure::Even, BaseFamily::Tip).is_ok());
    }

    #[test]
    fn node_counts_match_paper_formula() {
        let p = params(Structure::Even);
        assert_eq!(p.total_nodes(), 3 * 5 + 2);
        assert_eq!(p.data_nodes(), 12);
        assert_eq!(p.parity_nodes(), 5);
        // APPR.RS(4,1,2,3): overhead ((4+1)*3+2)/(4*3) = 17/12.
        assert!((p.storage_overhead() - 17.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn node_indexing_is_a_partition() {
        let p = params(Structure::Uneven);
        let mut seen = vec![false; p.total_nodes()];
        for s in 0..3 {
            for j in 0..4 {
                let n = p.data_node(s, j);
                assert!(!seen[n]);
                seen[n] = true;
                assert!(p.is_data_node(n));
                assert_eq!(p.stripe_of(n), Some(s));
            }
            let n = p.local_parity_node(s, 0);
            assert!(!seen[n]);
            seen[n] = true;
            assert!(!p.is_data_node(n));
            assert!(!p.is_global_node(n));
            assert_eq!(p.stripe_of(n), Some(s));
        }
        for t in 0..2 {
            let n = p.global_node(t);
            assert!(!seen[n]);
            seen[n] = true;
            assert!(p.is_global_node(n));
            assert_eq!(p.stripe_of(n), None);
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn importance_geometry() {
        let even = params(Structure::Even);
        assert_eq!(even.sub_slots(), 3);
        for node in 0..even.data_nodes() {
            assert!(even.node_has_important_data(node));
        }
        assert!(!even.node_has_important_data(even.global_node(0)));

        let uneven = params(Structure::Uneven);
        assert_eq!(uneven.sub_slots(), 1);
        for j in 0..4 {
            assert!(uneven.node_has_important_data(uneven.data_node(0, j)));
            assert!(!uneven.node_has_important_data(uneven.data_node(1, j)));
            assert!(!uneven.node_has_important_data(uneven.data_node(2, j)));
        }
    }
}
