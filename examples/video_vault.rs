//! The paper's whole pipeline, end to end:
//!
//! synthetic 60 fps video → GOP codec → tiered container (I-frames
//! important, P/B unimportant) → Approximate-Code stripes → node failures
//! beyond the unimportant tolerance → tiered repair → container parse with
//! CRC-detected damage → decode → frame interpolation → PSNR report.
//!
//! ```text
//! cargo run --release --example video_vault
//! ```

use approximate_code::approx::tiered;
use approximate_code::prelude::*;
use approximate_code::video::{
    decode_stream, encode_stream, parse_container, psnr_db, serialize_container, VideoContainer,
};

fn main() {
    // 1. Shoot and compress a clip.
    let (w, h, fps) = (96, 64, 60);
    let video = SyntheticVideo::new(w, h, fps as f64, 2024, 4);
    let frames = video.frames(120);
    let gop = GopConfig::default(); // I B P B P …, GOP of 12, light quant
    let encoded = encode_stream(&frames, &gop);
    let container = VideoContainer {
        width: w,
        height: h,
        fps,
        gop,
        frames: encoded,
    };
    let tiers = serialize_container(&container);
    println!(
        "clip: {} frames {}x{} @{}fps -> {} KiB important (I) + {} KiB unimportant (P/B)",
        frames.len(),
        w,
        h,
        fps,
        tiers.important.len() / 1024,
        tiers.unimportant.len() / 1024
    );

    // 2. Pack the tiers into APPR.STAR(5,2,1,4,Uneven) stripes: the
    //    paper's XOR-based instantiation (local EVENODD + global
    //    anti-diagonal parity).
    let code = ApproxCode::build_named(BaseFamily::Star, 5, 2, 1, 4, Structure::Uneven)
        .expect("valid parameters");
    let shard_len = code.shard_alignment() * 512;
    let packed = tiered::pack(&code, &tiers.important, &tiers.unimportant, shard_len)
        .expect("aligned shard length");
    println!(
        "storage: {} under {} ({} nodes, overhead {:.3}x vs 3DFT {:.3}x)",
        plural(packed.stripes.len(), "stripe"),
        code.name(),
        code.total_nodes(),
        code.storage_overhead(),
        8.0 / 5.0
    );

    // 3. Encode every stripe and blow up four nodes: one important-stripe
    //    node (survives via the global parity) and three in stripe 2 —
    //    one more than its local EVENODD tolerance, so stripe 2's
    //    unimportant data is genuinely lost.
    let p = *code.params();
    let victims = [
        p.data_node(0, 1),
        p.data_node(2, 0),
        p.data_node(2, 1),
        p.data_node(2, 3),
    ];
    println!("failing nodes {victims:?} on every stripe...");

    let mut damaged_stripes = Vec::new();
    let mut important_ok = true;
    let mut total_lost = 0usize;
    for shards in &packed.stripes {
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = code.encode(&refs).expect("encode");
        let mut stripe: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().chain(parity).map(Some).collect();
        for &v in &victims {
            stripe[v] = None;
        }
        let report = code.reconstruct_tiered(&mut stripe).expect("valid stripe");
        important_ok &= report.important_recovered;
        total_lost += report.lost_ranges.iter().map(|(_, r)| r.len()).sum::<usize>();
        // Apply the damage map: zero-filled ranges stay zero; collect the
        // repaired data shards back.
        let repaired: Vec<Vec<u8>> = stripe
            .into_iter()
            .take(code.data_nodes())
            .map(Option::unwrap)
            .collect();
        damaged_stripes.push(repaired);
    }
    assert!(important_ok, "important data must survive r+g failures");
    println!(
        "tiered repair: important data fully recovered, {} KiB of unimportant data lost",
        total_lost / 1024
    );

    // 4. Unpack the tiers and parse the container; CRC catches the frames
    //    whose payload bytes were zero-filled.
    let (imp, unimp) = tiered::unpack(
        &code,
        &damaged_stripes,
        packed.important_len,
        packed.unimportant_len,
    );
    let parsed = parse_container(&imp, &unimp).expect("important tier is intact by design");
    let damaged_frames = parsed.frames.iter().filter(|f| f.is_none()).count();

    // 5. Decode what survived; dependency tracking loses P/B tails, then
    //    interpolation fills every gap from the surviving anchors.
    let mut decoded = decode_stream(&parsed.frames, parsed.width, parsed.height, &parsed.gop);
    let undecodable = decoded.lost_indices();
    let report = recover_lost_frames(&mut decoded, Interpolator::MotionCompensated {
        search_radius: 3,
    });
    println!(
        "video: {damaged_frames} frame records damaged -> {} undecodable -> {} interpolated, {} extrapolated",
        undecodable.len(),
        report.interpolated.len(),
        report.extrapolated.len()
    );

    // 6. Score the approximate frames against the pristine originals.
    let mut worst = f64::INFINITY;
    let mut sum = 0.0;
    for &i in report.interpolated.iter().chain(&report.extrapolated) {
        let got = decoded.frames[i].as_ref().expect("filled by recovery");
        let p = psnr_db(&frames[i], got);
        sum += p;
        if p < worst {
            worst = p;
        }
    }
    let n = (report.interpolated.len() + report.extrapolated.len()).max(1);
    println!(
        "recovered-frame quality: mean {:.1} dB, worst {:.1} dB (paper's bar: 35 dB mean)",
        sum / n as f64,
        worst
    );
    assert!(sum / n as f64 > 35.0, "mean recovered PSNR must clear 35 dB");
}

fn plural(n: usize, word: &str) -> String {
    if n == 1 {
        format!("{n} {word}")
    } else {
        format!("{n} {word}s")
    }
}
