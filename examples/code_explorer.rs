//! Code explorer: prints the paper's Table 3-style properties plus the
//! §3.4 reliability expectations for a sweep of Approximate Codes, with
//! the analytic values cross-checked against the real decoder.
//!
//! ```text
//! cargo run --release --example code_explorer
//! ```

use approximate_code::analysis::{overhead, reliability, writecost};
use approximate_code::prelude::*;

fn main() {
    println!("== Base codes (paper Table 3) ==");
    println!(
        "{:<16} {:>9} {:>11} {:>13}",
        "code", "overhead", "tolerance", "single-write"
    );
    let k = 5;
    let rows: Vec<(String, f64, usize, f64)> = vec![
        (
            format!("RS({k},3)"),
            overhead::rs_overhead(k, 3),
            3,
            writecost::rs_single_write(3),
        ),
        (
            format!("LRC({k},4,2)"),
            overhead::lrc_overhead(k, 4, 2),
            3,
            writecost::lrc_single_write(2),
        ),
        (
            format!("STAR({k},3)"),
            overhead::star_overhead(k),
            3,
            writecost::star_single_write(k),
        ),
        (
            format!("TIP({k},3)"),
            overhead::tip_overhead(7),
            3,
            writecost::tip_single_write(),
        ),
    ];
    for (name, ovh, tol, sw) in rows {
        println!("{name:<16} {ovh:>8.3}x {tol:>11} {sw:>13.2}");
    }

    println!("\n== Approximate Codes, measured from the generated layouts ==");
    println!(
        "{:<28} {:>9} {:>6} {:>7} {:>13} {:>8} {:>8}",
        "code", "overhead", "tol", "tol(ID)", "single-write", "P_U", "P_I"
    );
    for family in [BaseFamily::Rs, BaseFamily::Star, BaseFamily::Tip] {
        for structure in [Structure::Even, Structure::Uneven] {
            for (r, g) in [(1usize, 2usize), (2, 1)] {
                let code = ApproxCode::build_named(family, 5, r, g, 4, structure)
                    .expect("valid parameters");
                let pu = reliability::analytic_p_u(5, r, g, 4, structure);
                let pi = reliability::analytic_p_i(5, r, g, 4, structure)
                    .expect("(r, g) sweep stays within 3DFT");
                println!(
                    "{:<28} {:>8.3}x {:>6} {:>7} {:>13.2} {:>7.2}% {:>7.2}%",
                    code.name(),
                    code.storage_overhead(),
                    code.fault_tolerance(),
                    code.important_fault_tolerance(),
                    code.update_pattern().node_writes,
                    pu * 100.0,
                    pi * 100.0
                );
            }
        }
    }

    println!("\n== Cross-check: analytic vs real decoder (APPR.RS(3,1,2,3)) ==");
    for structure in [Structure::Even, Structure::Uneven] {
        let code = ApproxCode::build_named(BaseFamily::Rs, 3, 1, 2, 3, structure)
            .expect("valid parameters");
        let measured2 = reliability::enumerate_reliability(&code, 2);
        let measured4 = reliability::enumerate_reliability(&code, 4);
        println!(
            "{structure:<7}: P_U analytic {:.2}% / enumerated {:.2}%   P_I analytic {:.2}% / enumerated {:.2}%",
            reliability::analytic_p_u(3, 1, 2, 3, structure) * 100.0,
            measured2.p_u * 100.0,
            reliability::analytic_p_i(3, 1, 2, 3, structure).expect("3DFT") * 100.0,
            measured4.p_i * 100.0
        );
    }

    println!("\n== Storage savings over RS(k,3) (paper Table 4) ==");
    print!("{:<22}", "k =");
    for k in 4..=9 {
        print!("{k:>8}");
    }
    println!();
    for (r, g, h) in [(1, 2, 4), (2, 1, 4), (1, 2, 6), (2, 1, 6)] {
        print!("{:<22}", format!("APPR.RS(k,{r},{g},{h})"));
        for k in 4..=9 {
            print!("{:>7.1}%", overhead::appr_rs_improvement(k, r, g, h) * 100.0);
        }
        println!();
    }
}
