//! Quickstart: build an Approximate Code, lose nodes, recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use approximate_code::ec::rng;
use approximate_code::prelude::*;
use rand::prelude::*;

fn main() {
    // APPR.RS(4,1,2,3,Uneven): 3 local stripes of (4 data + 1 local
    // parity) plus 2 global parities protecting stripe 0 — the paper's
    // running example. 17 nodes total, 12 of them data.
    let code = ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Uneven)
        .expect("valid parameters");
    println!("code:            {}", code.name());
    println!("nodes:           {} ({} data)", code.total_nodes(), code.data_nodes());
    println!("storage overhead: {:.3}x (RS(4,3) would be {:.3}x)",
        code.storage_overhead(), 7.0 / 4.0);
    println!("fault tolerance:  any {} node(s) for everything, any {} for important data",
        code.fault_tolerance(), code.important_fault_tolerance());

    // Fill the data nodes with random shards (seed-plumbed: same run
    // every time, like everything stochastic in this workspace).
    let mut rng = rng::seeded(7);
    let shard_len = code.shard_alignment() * 4096;
    let data: Vec<Vec<u8>> = (0..code.data_nodes())
        .map(|_| {
            let mut v = vec![0u8; shard_len];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).expect("encode");
    println!("\nencoded {} data shards into {} parity shards of {} KiB",
        data.len(), parity.len(), shard_len / 1024);

    let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();

    // Scenario 1: one arbitrary failure — everything comes back.
    let mut stripe = full.clone();
    stripe[5] = None;
    code.reconstruct(&mut stripe).expect("single failure is within tolerance");
    assert_eq!(stripe, full);
    println!("\n[1] lost node 5           -> fully recovered");

    // Scenario 2: three failures hitting the important stripe — important
    // data has 3DFT protection, so it all comes back too.
    let mut stripe = full.clone();
    let p = *code.params();
    for v in [p.data_node(0, 0), p.data_node(0, 2), p.data_node(0, 3)] {
        stripe[v] = None;
    }
    let report = code.reconstruct_tiered(&mut stripe).expect("valid stripe");
    assert!(report.fully_recovered);
    println!("[2] lost 3 important nodes -> fully recovered ({} elements read)",
        report.elements_read);

    // Scenario 3: two failures inside one unimportant stripe exceed the
    // local parity — unimportant bytes there are gone, but the report
    // says exactly which ranges, and all important data survives.
    let mut stripe = full.clone();
    for v in [p.data_node(1, 0), p.data_node(1, 1)] {
        stripe[v] = None;
    }
    let report = code.reconstruct_tiered(&mut stripe).expect("valid stripe");
    assert!(!report.fully_recovered && report.important_recovered);
    let lost: usize = report.lost_ranges.iter().map(|(_, r)| r.len()).sum();
    println!("[3] lost 2 nodes in one unimportant stripe ->");
    println!("    important data: recovered");
    println!("    unimportant data: {} KiB lost in {} ranges (handed to video interpolation)",
        lost / 1024, report.lost_ranges.len());
}
