//! Cluster failover drill: store an object, kill nodes, repair onto
//! spares — functionally (real bytes) and in simulated wall-clock time.
//!
//! ```text
//! cargo run --release --example cluster_failover
//! ```

use approximate_code::cluster::{simulate_repair, Cluster, ClusterConfig};
use approximate_code::prelude::*;
use std::collections::HashMap;

const GB: u64 = 1 << 30;

fn main() {
    // --- Functional drill: bytes survive a double failure -----------------
    let code = ReedSolomon::vandermonde(5, 3).expect("valid parameters");
    let mut cluster = Cluster::new(12);
    let object: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
    let mut meta = cluster
        .store_object(&code, 42, &object, 8192)
        .expect("cluster is big enough");
    println!(
        "stored {} KiB as {} stripes of {} on a 12-node cluster",
        object.len() / 1024,
        meta.stripes,
        code.name()
    );

    let victims = [meta.placement[0], meta.placement[6]];
    for &v in &victims {
        cluster.kill_node(v).expect("node exists");
    }
    println!("killed nodes {victims:?}; degraded read still serves the object: {}",
        cluster.read_object(&code, &meta).expect("within tolerance") == object);

    let spares: Vec<usize> = (0..cluster.node_count())
        .filter(|n| !meta.placement.contains(n))
        .take(2)
        .collect();
    let mapping: HashMap<usize, usize> =
        victims.iter().copied().zip(spares.iter().copied()).collect();
    let rebuilt = cluster
        .repair_object(&code, &mut meta, &mapping)
        .expect("repairable");
    println!("repaired {rebuilt} blocks onto spares {spares:?}");
    assert_eq!(cluster.read_object(&code, &meta).unwrap(), object);

    // --- Timing drill: RS vs Approximate Code on 1 GB nodes ---------------
    println!("\nsimulated double-failure recovery, 1 GB per node (paper's Fig. 14a):");
    let cfg = ClusterConfig::default();

    let rs_profile = code.repair_profile(&[0, 1]).expect("within tolerance");
    let rs_time = simulate_repair(&cfg, &rs_profile, GB, None);

    let appr = ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, Structure::Uneven)
        .expect("valid parameters");
    let p = *appr.params();
    // Typical double failure: two different stripes, each repaired by its
    // cheap local parity.
    let ap_profile = appr
        .repair_profile(&[p.data_node(1, 0), p.data_node(2, 1)])
        .expect("profile");
    let ap_time = simulate_repair(&cfg, &ap_profile, GB, None);

    println!(
        "  RS(5,3)              : {:>6.2} s  (read {:.1} GB, wrote {:.1} GB)",
        rs_time.seconds,
        rs_time.bytes_read as f64 / GB as f64,
        rs_time.bytes_written as f64 / GB as f64
    );
    println!(
        "  APPR.RS(5,1,2,4)     : {:>6.2} s  (read {:.1} GB, wrote {:.1} GB)",
        ap_time.seconds,
        ap_time.bytes_read as f64 / GB as f64,
        ap_time.bytes_written as f64 / GB as f64
    );
    println!(
        "  speedup              : {:>6.2}x",
        rs_time.seconds / ap_time.seconds
    );
    assert!(ap_time.seconds < rs_time.seconds);

    // And the degenerate best case the paper's §4.3 analysis leans on:
    // when both failures land in one unimportant stripe (r = 1), nothing
    // is recoverable there, so the disk/network pipeline does no work at
    // all — the loss is handed to the video-interpolation layer instead.
    let worst = appr
        .repair_profile(&[p.data_node(1, 0), p.data_node(1, 1)])
        .expect("profile");
    let worst_time = simulate_repair(&cfg, &worst, GB, None);
    println!(
        "  (same-stripe case    : {:>6.2} s — unimportant data delegated to interpolation)",
        worst_time.seconds
    );
}
