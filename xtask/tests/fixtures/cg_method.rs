//! Typed receiver: `let s = Solver::new()` pins `s.solve()` to Solver,
//! so the same-named Engine::solve (with its own hazard) stays unreached.

pub struct Solver;

impl Solver {
    pub fn new() -> Self {
        Solver
    }

    fn solve(&self, x: Option<u8>) -> u8 {
        x.unwrap()
    }
}

pub struct Engine;

impl Engine {
    fn solve(&self, x: Option<u8>) -> u8 {
        x.unwrap()
    }
}

pub fn decode(x: Option<u8>) -> u8 {
    let s = Solver::new();
    s.solve(x)
}
