//! The acceptance sabotage: an `unwrap()` two calls deep under `decode`
//! must be caught, with the full chain in the diagnostic.

pub fn decode(x: Option<u8>) -> u8 {
    mid(x)
}

fn mid(x: Option<u8>) -> u8 {
    deep(x)
}

fn deep(x: Option<u8>) -> u8 {
    x.unwrap()
}
