//! Trait-default-method edge: `decode`'s default body dispatches through
//! `self.inner(..)` to every impl of the trait.

pub trait Code {
    fn inner(&self, x: Option<u8>) -> u8;

    fn decode(&self, x: Option<u8>) -> u8 {
        self.inner(x)
    }
}

pub struct Rs;

impl Code for Rs {
    fn inner(&self, x: Option<u8>) -> u8 {
        x.unwrap()
    }
}
