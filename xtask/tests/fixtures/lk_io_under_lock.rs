//! Blocking file I/O one call below a serving root that holds a lock:
//! the finding must land on the I/O site and carry the root→call chain
//! plus the acquisition site.

use std::sync::Mutex;

pub struct S {
    pub m: Mutex<u32>,
}

pub fn handle_request(s: &S, path: &str) {
    let _g = s.m.lock().unwrap();
    persist(path);
}

fn persist(path: &str) {
    std::fs::write(path, b"x").unwrap();
}
