//! Known-good fixture: a string literal spanning lines that *mentions*
//! `unsafe` blocks and `unwrap()` calls. The PR 2 line scanner had no
//! notion of literals and false-positived on files like this; the lexer
//! keeps the whole thing a single `Lit` token.

pub const USAGE: &str = "example (not code):
    unsafe { ptr.read() }
    shards[0].unwrap()
    a + b on read_bytes
";

pub fn usage_len() -> usize {
    USAGE.len()
}
