//! Mutual recursion: the BFS must terminate and report the hazard once,
//! with the shortest chain from the root.

pub fn decode(n: u8, x: Option<u8>) -> u8 {
    ping(n, x)
}

fn ping(n: u8, x: Option<u8>) -> u8 {
    if n == 0 {
        x.unwrap()
    } else {
        pong(n - 1, x)
    }
}

fn pong(n: u8, x: Option<u8>) -> u8 {
    ping(n, x)
}
