//! Known-good fixture: the same decode-path hazards as
//! `bad_panic_path.rs`, but each carries a `panic-ok:` marker with a
//! stated invariant, so the linter records waivers instead of errors.

pub fn decode(shards: &[Option<Vec<u8>>]) -> usize {
    // panic-ok: caller validated shards[0] is present before dispatch
    let first = shards[0].as_ref().unwrap();
    first.len()
}
