//! A doc comment between `#[cfg(test)]` and its item owns no tokens and
//! must not detach the test mask from the item.

pub fn ship() -> u8 {
    1
}

#[cfg(test)]
/// Harness helpers; doc text mentioning unwrap() and shards[0].
mod tests {
    pub fn t(x: Option<u8>) -> u8 {
        x.unwrap()
    }
}
