//! Known-bad fixture: panics on a decode path, with a `#[cfg(test)]`
//! module that must stay exempt even though it sits mid-file.

pub fn decode(shards: &[Option<Vec<u8>>]) -> usize {
    let first = shards[0].as_ref().unwrap();
    first.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        v.unwrap();
        let shards = [1u8, 2];
        assert_eq!(shards[0], 1);
    }
}
