//! Dyn-dispatch fan-out: a call through `&dyn Code` edges to every impl
//! of the called method; only B's chain carries a hazard.

pub trait Code {
    fn inner(&self, x: Option<u8>) -> u8;
}

pub struct A;
pub struct B;

impl Code for A {
    fn inner(&self, x: Option<u8>) -> u8 {
        x.unwrap_or(0)
    }
}

impl Code for B {
    fn inner(&self, x: Option<u8>) -> u8 {
        boom(x)
    }
}

fn boom(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn decode(c: &dyn Code, x: Option<u8>) -> u8 {
    c.inner(x)
}
