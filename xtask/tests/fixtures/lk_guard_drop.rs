//! Guard-lifetime tracking through early `drop(guard)`: identical I/O
//! is clean after the drop and flagged before it.

use std::sync::Mutex;

pub struct S {
    pub m: Mutex<u32>,
}

pub fn after_drop(s: &S, path: &str) {
    let g = s.m.lock().unwrap();
    drop(g);
    std::fs::write(path, b"x").unwrap();
}

pub fn before_drop(s: &S, path: &str) {
    let g = s.m.lock().unwrap();
    std::fs::write(path, b"x").unwrap();
    drop(g);
}
