//! One-hop edges for both reachability policies: a panic hazard under
//! `decode` and an allocation under `encode_into`.

pub fn decode(x: Option<u8>) -> u8 {
    helper(x)
}

fn helper(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn encode_into(out: &mut [u8]) {
    fill(out)
}

fn fill(out: &mut [u8]) {
    let scratch = vec![0u8; out.len()];
    out.copy_from_slice(&scratch);
}
