//! Known-bad fixture: an `unsafe` block whose `{` sits on the next line.
//!
//! The PR 2 line scanner matched the literal text `unsafe {` and let this
//! formatting through; the token scanner must classify it as a block
//! regardless of the line break (see `scopes::classify_unsafe`).

pub fn peek(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    unsafe
    {
        *p
    }
}
