//! The acceptance sabotage: a lock-order inversion hidden one call deep
//! under two serving roots. `handle_request` takes the queue lock and
//! then, through a helper, the slot lock; `drain_repairs` acquires the
//! same two locks in the opposite order through its own helper. The
//! pass must report a cycle on both edges, each with the full
//! root→acquire trace.

use std::sync::Mutex;

pub struct S {
    pub queue: Mutex<u32>,
    pub slot: Mutex<u32>,
}

pub fn handle_request(s: &S) {
    let _q = s.queue.lock().unwrap();
    grab_slot(s);
}

fn grab_slot(s: &S) {
    let _s = s.slot.lock().unwrap();
}

pub fn drain_repairs(s: &S) {
    let _s = s.slot.lock().unwrap();
    grab_queue(s);
}

fn grab_queue(s: &S) {
    let _q = s.queue.lock().unwrap();
}
