//! Opposite-order acquisition across two functions: the classic AB/BA
//! deadlock shape. The lock pass must flag the cycle on both edges even
//! with no declared ranks (auto-classed locks, SCC detection).

use std::sync::Mutex;

pub struct S {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

impl S {
    pub fn ab(&self) {
        let _ga = self.a.lock().unwrap();
        let _gb = self.b.lock().unwrap();
    }

    pub fn ba(&self) {
        let _gb = self.b.lock().unwrap();
        let _ga = self.a.lock().unwrap();
    }
}
