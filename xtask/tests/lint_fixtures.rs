//! Regression fixtures for the semantic linter.
//!
//! Each fixture in `tests/fixtures/` is a Rust snippet that either
//! defeated the PR 2 line-oriented scanner (multi-line `unsafe`, string
//! literals that look like code) or pins the behaviour of the PR 5
//! semantic policies (panic-freedom scope, `#[cfg(test)]` exemption,
//! `panic-ok:` waivers). The fixtures directory is excluded from the
//! workspace scan (`lint::run` skips `fixtures/`), so the snippets are
//! linted only here, against a path chosen by each test.

// The whole module tree is included; this harness only exercises the
// per-file path (`lint_file`), so the workspace driver is dead code here.
#![allow(dead_code)]

#[path = "../src/lint/mod.rs"]
mod lint;

use lint::lexer::lex;
use lint::report::Finding;
use lint::rules::lint_file;
use lint::scopes::analyze;

/// Reads a fixture whether the test runs from the workspace root (the
/// offline harness) or from `xtask/` (cargo).
fn fixture(name: &str) -> String {
    let candidates = [
        format!("xtask/tests/fixtures/{name}"),
        format!("tests/fixtures/{name}"),
    ];
    for c in &candidates {
        if let Ok(src) = std::fs::read_to_string(c) {
            return src;
        }
    }
    panic!("fixture {name} not found in {candidates:?}");
}

/// Lints a fixture as if it lived at `rel` inside the workspace.
fn lint_as(rel: &str, name: &str) -> Vec<Finding> {
    let src = fixture(name);
    let lexed = lex(&src);
    let scopes = analyze(&lexed);
    assert!(!scopes.unbalanced, "{name}: fixture has unbalanced delimiters");
    let mut findings = Vec::new();
    lint_file(rel, &lexed, &scopes, &mut findings);
    findings
}

fn errors(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.waived).collect()
}

#[test]
fn multi_line_unsafe_block_is_still_contained() {
    // The regression the fixture set exists for: `unsafe\n{` defeated the
    // old `"unsafe {"` substring match.
    let findings = lint_as("crates/rs/src/fixture.rs", "bad_multiline_unsafe.rs");
    let errs = errors(&findings);
    assert!(
        errs.iter().any(|f| f.rule == "unsafe-containment"),
        "multi-line unsafe block escaped containment: {findings:?}"
    );
    // The block starts at the `unsafe` keyword's line (9), not the `{`.
    let site = errs.iter().find(|f| f.rule == "unsafe-containment").unwrap();
    assert_eq!(site.line, 9, "finding must anchor at the unsafe keyword");
}

#[test]
fn code_shaped_string_literals_are_not_code() {
    // Mentions of unsafe/unwrap/indexing inside a string literal must not
    // trip any rule, even at the most heavily policed path.
    let findings = lint_as("crates/rs/src/fixture.rs", "good_multiline_string.rs");
    assert!(
        errors(&findings).is_empty(),
        "string literal content was linted as code: {findings:?}"
    );
}

#[test]
fn panic_path_hazards_flagged_outside_tests_only() {
    let findings = lint_as("crates/rs/src/fixture.rs", "bad_panic_path.rs");
    let errs = errors(&findings);
    assert!(
        errs.iter().any(|f| f.rule == "panic-freedom" && f.line == 5),
        "unwrap on the decode path not flagged: {findings:?}"
    );
    assert!(
        errs.iter().any(|f| f.rule == "shard-index" && f.line == 5),
        "shards[0] indexing not flagged: {findings:?}"
    );
    // Nothing inside the mid-file #[cfg(test)] module (lines 9+) fires.
    assert!(
        errs.iter().all(|f| f.line < 9),
        "findings leaked into the #[cfg(test)] module: {findings:?}"
    );
}

#[test]
fn panic_ok_markers_waive_and_are_inventoried() {
    let findings = lint_as("crates/rs/src/fixture.rs", "good_waived_panic.rs");
    assert!(
        errors(&findings).is_empty(),
        "panic-ok marker did not waive: {findings:?}"
    );
    let waived: Vec<_> = findings.iter().filter(|f| f.waived).collect();
    assert_eq!(waived.len(), 2, "expected unwrap + index waivers: {findings:?}");
    assert!(
        waived.iter().all(|f| f.detail.contains("caller validated")),
        "waiver must carry the stated invariant: {findings:?}"
    );
}

#[test]
fn doc_comment_between_cfg_test_and_item_still_masks() {
    // Regression for a body-local false negative's mirror image: a doc
    // comment between `#[cfg(test)]` and the `mod` owns no tokens, so the
    // mask must still attach to the item and silence its hazards.
    let findings = lint_as("crates/rs/src/fixture.rs", "good_cfg_doc_comment.rs");
    assert!(
        errors(&findings).is_empty(),
        "doc comment detached the test mask: {findings:?}"
    );
}

#[test]
fn outside_panic_scope_the_same_code_is_clean() {
    // The same hazardous snippet at a non-policed path produces nothing:
    // the policy is scoped, not global.
    let findings = lint_as("crates/video/src/fixture.rs", "bad_panic_path.rs");
    assert!(
        errors(&findings).is_empty(),
        "panic policy fired outside its scope: {findings:?}"
    );
}
