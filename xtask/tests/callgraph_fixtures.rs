//! End-to-end fixtures for the call-graph layers (symbols → call graph →
//! reachability policies).
//!
//! Each `cg_*.rs` fixture in `tests/fixtures/` is a small workspace-shaped
//! snippet pinning one edge-resolution behaviour: direct calls, typed
//! method receivers, trait-default-method dispatch, dyn fan-out, cycles,
//! and the acceptance sabotage (an `unwrap()` two calls deep under
//! `decode`). Every test asserts the *exact* reachability trace the
//! diagnostic carries, so trace formatting and BFS parentage are pinned,
//! not just "a finding exists".

// The whole module tree is included; this harness exercises the symbol,
// graph and transitive layers, so the workspace driver is dead code here.
#![allow(dead_code)]

#[path = "../src/lint/mod.rs"]
mod lint;

use lint::callgraph::{build, CallGraph};
use lint::lexer::lex;
use lint::report::Finding;
use lint::scopes::analyze;
use lint::symbols::SymbolTable;
use lint::transitive;

/// The workspace-relative path fixtures are analyzed under; `qualify`
/// turns it into the `cg::lib` prefix every pinned trace uses.
const REL: &str = "crates/cg/src/lib.rs";

/// Reads a fixture whether the test runs from the workspace root (the
/// offline harness) or from `xtask/` (cargo).
fn fixture(name: &str) -> String {
    let candidates = [
        format!("xtask/tests/fixtures/{name}"),
        format!("tests/fixtures/{name}"),
    ];
    for c in &candidates {
        if let Ok(src) = std::fs::read_to_string(c) {
            return src;
        }
    }
    panic!("fixture {name} not found in {candidates:?}");
}

/// Runs the full analysis stack on one fixture as if it lived at [`REL`].
fn analyze_fixture(name: &str) -> (SymbolTable, CallGraph, Vec<Finding>) {
    let src = fixture(name);
    let lexed = lex(&src);
    let scopes = analyze(&lexed);
    assert!(!scopes.unbalanced, "{name}: fixture has unbalanced delimiters");
    let mut table = SymbolTable::default();
    table.add_file(REL, 0, &lexed, &scopes);
    let files = vec![(REL.to_string(), lexed, scopes)];
    let graph = build(&table, &files);
    let mut findings = Vec::new();
    transitive::run(&table, &graph, &mut findings);
    (table, graph, findings)
}

fn errors(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.waived).collect()
}

#[test]
fn direct_call_chains_feed_both_policies() {
    let (_, _, f) = analyze_fixture("cg_direct.rs");
    let e = errors(&f);
    assert_eq!(e.len(), 2, "{f:?}");
    let panic = e.iter().find(|f| f.rule == "transitive-panic").unwrap();
    assert_eq!(panic.line, 9);
    assert!(
        panic.detail.contains("cg::lib::decode →[crates/cg/src/lib.rs:5] cg::lib::helper"),
        "{}",
        panic.detail
    );
    let alloc = e.iter().find(|f| f.rule == "transitive-alloc").unwrap();
    assert_eq!(alloc.line, 17);
    assert!(
        alloc
            .detail
            .contains("cg::lib::encode_into →[crates/cg/src/lib.rs:13] cg::lib::fill"),
        "{}",
        alloc.detail
    );
}

#[test]
fn typed_receiver_pins_the_impl() {
    // `let s = Solver::new(); s.solve(x)` must flag Solver::solve only;
    // Engine::solve carries the same hazard but is unreached.
    let (_, _, f) = analyze_fixture("cg_method.rs");
    let e = errors(&f);
    assert_eq!(e.len(), 1, "{f:?}");
    assert_eq!(e[0].line, 12, "Solver::solve's unwrap, not Engine's (line 20)");
    assert!(
        e[0].detail.contains("cg::lib::decode →[crates/cg/src/lib.rs:26] cg::lib::solve"),
        "{}",
        e[0].detail
    );
}

#[test]
fn trait_default_method_edges_to_impls() {
    let (_, _, f) = analyze_fixture("cg_trait_default.rs");
    let e = errors(&f);
    assert_eq!(e.len(), 1, "{f:?}");
    assert_eq!(e[0].line, 16);
    assert!(
        e[0].detail.contains("cg::lib::decode →[crates/cg/src/lib.rs:8] cg::lib::inner"),
        "{}",
        e[0].detail
    );
}

#[test]
fn dyn_dispatch_fans_to_every_impl() {
    // `c.inner(x)` through `&dyn Code` reaches both impls; only B's chain
    // continues into `boom` and its unwrap.
    let (_, _, f) = analyze_fixture("cg_dyn.rs");
    let e = errors(&f);
    assert_eq!(e.len(), 1, "{f:?}");
    assert_eq!(e[0].line, 24);
    assert!(
        e[0].detail.contains(
            "cg::lib::decode →[crates/cg/src/lib.rs:28] cg::lib::inner \
             →[crates/cg/src/lib.rs:19] cg::lib::boom"
        ),
        "{}",
        e[0].detail
    );
}

#[test]
fn cycle_terminates_and_reports_once() {
    let (_, _, f) = analyze_fixture("cg_cycle.rs");
    let e = errors(&f);
    assert_eq!(e.len(), 1, "{f:?}");
    assert_eq!(e[0].line, 10);
    // The shortest chain: decode → ping, not the ping↔pong loop.
    assert!(
        e[0].detail.contains("cg::lib::decode →[crates/cg/src/lib.rs:5] cg::lib::ping"),
        "{}",
        e[0].detail
    );
}

#[test]
fn sabotage_two_deep_unwrap_is_caught_with_full_trace() {
    // The acceptance sabotage: hide an unwrap two calls below `decode`.
    let (_, _, f) = analyze_fixture("cg_sabotage.rs");
    let e = errors(&f);
    assert_eq!(e.len(), 1, "{f:?}");
    assert_eq!(e[0].rule, "transitive-panic");
    assert_eq!(e[0].line, 13);
    assert!(
        e[0].detail.contains(
            "cg::lib::decode →[crates/cg/src/lib.rs:5] cg::lib::mid \
             →[crates/cg/src/lib.rs:9] cg::lib::deep"
        ),
        "{}",
        e[0].detail
    );
}

#[test]
fn symbol_table_records_methods_and_lines() {
    let (table, graph, _) = analyze_fixture("cg_method.rs");
    // 2 Solver methods + 1 Engine method + decode.
    assert_eq!(table.fns.len(), 4);
    let solve = &table.fns[table.by_type_method[&("Solver".into(), "solve".into())][0]];
    assert!(solve.is_method());
    assert_eq!(solve.line, 11, "fn keyword line");
    let decode = &table.fns[table.free_by_name["decode"][0]];
    assert!(!decode.is_method());
    assert_eq!(decode.line, 24);
    // decode has exactly two edges: Solver::new and Solver::solve.
    let decode_id = table.free_by_name["decode"][0];
    assert_eq!(graph.edges[decode_id].len(), 2, "{:?}", graph.edges[decode_id]);
}
