//! End-to-end fixtures for the static lock-order / blocking-under-lock
//! pass (symbols → call graph → `lint::locks`).
//!
//! Each `lk_*.rs` fixture in `tests/fixtures/` is a workspace-shaped
//! snippet pinning one behaviour: the AB/BA cycle, guard-lifetime
//! tracking through early `drop`, blocking I/O below a root that holds
//! a lock, and the acceptance sabotage — an inversion hidden one call
//! deep under two serving roots. Tests assert the *exact* trace strings
//! the diagnostics carry, so chain formatting, acquisition-site
//! attribution and BFS parentage are pinned, not just "a finding
//! exists".

// The whole module tree is included; this harness exercises the symbol,
// graph and lock layers, so the workspace driver is dead code here.
#![allow(dead_code)]

#[path = "../src/lint/mod.rs"]
mod lint;

use lint::callgraph::build;
use lint::lexer::lex;
use lint::locks::{self, LockStats};
use lint::report::Finding;
use lint::scopes::analyze;
use lint::symbols::SymbolTable;

/// The workspace-relative path fixtures are analyzed under; `qualify`
/// turns it into the `cg::lib` prefix every pinned trace uses, and the
/// `cg.*` auto lock classes derive from the same crate name.
const REL: &str = "crates/cg/src/lib.rs";

/// Reads a fixture whether the test runs from the workspace root (the
/// offline harness) or from `xtask/` (cargo).
fn fixture(name: &str) -> String {
    let candidates = [
        format!("xtask/tests/fixtures/{name}"),
        format!("tests/fixtures/{name}"),
    ];
    for c in &candidates {
        if let Ok(src) = std::fs::read_to_string(c) {
            return src;
        }
    }
    panic!("fixture {name} not found in {candidates:?}");
}

/// Runs the full lock-analysis stack on one fixture as if it lived at
/// [`REL`].
fn analyze_fixture(name: &str) -> (LockStats, Vec<Finding>) {
    let src = fixture(name);
    let lexed = lex(&src);
    let scopes = analyze(&lexed);
    assert!(!scopes.unbalanced, "{name}: fixture has unbalanced delimiters");
    let mut table = SymbolTable::default();
    table.add_file(REL, 0, &lexed, &scopes);
    let files = vec![(REL.to_string(), lexed, scopes)];
    let graph = build(&table, &files);
    let mut findings = Vec::new();
    let stats = locks::run(&table, &graph, &files, &mut findings);
    (stats, findings)
}

fn errors(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.waived).collect()
}

#[test]
fn opposite_order_methods_are_a_cycle_on_both_edges() {
    let (stats, findings) = analyze_fixture("lk_order_cycle.rs");
    assert_eq!(stats.classes, 2, "cg.a and cg.b");
    assert_eq!(stats.acquisition_sites, 4);
    assert_eq!(stats.order_edges, 2, "a→b and b→a");
    let errs = errors(&findings);
    assert_eq!(errs.len(), 2, "{findings:?}");
    assert!(errs.iter().all(|f| f.rule == "transitive-lock-order"));
    let ab = errs
        .iter()
        .find(|f| f.detail.contains("`cg.b` acquired while holding `cg.a`"))
        .expect("a→b edge reported");
    // The finding anchors at the second acquisition and names the first.
    assert_eq!(ab.line, 15, "anchor on the b-acquisition inside ab()");
    assert!(
        ab.detail.contains("(acquired at crates/cg/src/lib.rs:14)"),
        "{}", ab.detail
    );
    assert!(ab.detail.contains("can deadlock"), "{}", ab.detail);
    let ba = errs
        .iter()
        .find(|f| f.detail.contains("`cg.a` acquired while holding `cg.b`"))
        .expect("b→a edge reported");
    assert_eq!(ba.line, 20, "anchor on the a-acquisition inside ba()");
}

#[test]
fn early_drop_ends_the_guard_extent() {
    let (stats, findings) = analyze_fixture("lk_guard_drop.rs");
    assert_eq!(stats.classes, 1);
    let errs = errors(&findings);
    // Only `before_drop` flags; the identical write in `after_drop`
    // happens after `drop(g)` ended the extent.
    assert_eq!(errs.len(), 1, "{findings:?}");
    assert_eq!(errs[0].rule, "transitive-lock-io");
    assert_eq!(errs[0].line, 18, "the fs::write inside before_drop");
    assert!(
        errs[0].detail.contains("blocking `fs::write`"),
        "{}", errs[0].detail
    );
    assert!(
        errs[0]
            .detail
            .contains("(acquired at crates/cg/src/lib.rs:17)"),
        "{}", errs[0].detail
    );
}

#[test]
fn io_below_a_root_carries_the_full_chain() {
    let (_, findings) = analyze_fixture("lk_io_under_lock.rs");
    let errs = errors(&findings);
    assert_eq!(errs.len(), 1, "{findings:?}");
    let f = errs[0];
    assert_eq!(f.rule, "transitive-lock-io");
    assert_eq!(f.line, 17, "the fs::write inside persist");
    // Exact trace: root → call site → hazard holder.
    assert!(
        f.detail.contains(
            "cg::lib::handle_request →[crates/cg/src/lib.rs:13] cg::lib::persist"
        ),
        "{}", f.detail
    );
    assert!(
        f.detail
            .contains("while holding lock class `cg.m` (acquired at crates/cg/src/lib.rs:12)"),
        "{}", f.detail
    );
}

#[test]
fn sabotage_inversion_is_caught_with_pinned_traces() {
    let (stats, findings) = analyze_fixture("lk_sabotage.rs");
    assert_eq!(stats.classes, 2, "cg.queue and cg.slot");
    assert_eq!(stats.order_edges, 2);
    let errs = errors(&findings);
    assert_eq!(errs.len(), 2, "both cycle edges: {findings:?}");
    let qs = errs
        .iter()
        .find(|f| f.detail.contains("`cg.slot` acquired while holding `cg.queue`"))
        .expect("queue→slot edge");
    assert_eq!(qs.line, 21, "the slot acquisition inside grab_slot");
    assert!(
        qs.detail.contains(
            "cg::lib::handle_request →[crates/cg/src/lib.rs:17] cg::lib::grab_slot"
        ),
        "root→acquire trace must anchor at the serving root: {}",
        qs.detail
    );
    assert!(
        qs.detail.contains("(acquired at crates/cg/src/lib.rs:16)"),
        "{}", qs.detail
    );
    let sq = errs
        .iter()
        .find(|f| f.detail.contains("`cg.queue` acquired while holding `cg.slot`"))
        .expect("slot→queue edge");
    assert_eq!(sq.line, 30, "the queue acquisition inside grab_queue");
    assert!(
        sq.detail.contains(
            "cg::lib::drain_repairs →[crates/cg/src/lib.rs:26] cg::lib::grab_queue"
        ),
        "{}", sq.detail
    );
}
