//! Workspace helper tasks, invoked as `cargo xtask <command>`.
//!
//! `lint` is the soundness gate that rustc cannot express as a built-in
//! lint: it enforces the workspace's unsafe-containment policy (see
//! DESIGN.md §Assurance) over the source tree itself:
//!
//! 1. **SAFETY comments** — every `unsafe` block must carry a
//!    `// SAFETY:` comment on the same line or within the five lines
//!    above it, stating the invariant that makes the block sound.
//! 2. **unsafe containment** — `unsafe` code may appear only under
//!    `crates/gf/src/kernels/`; every other crate root must pin
//!    `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` for the
//!    `gf` root itself, which scopes narrow `allow`s to the two kernel
//!    modules).
//! 3. **no raw XOR/mul loops** — shard-byte XOR (`^=`) and GF product
//!    table indexing belong in `apec_gf`'s kernels, where they are
//!    SIMD-dispatched and property-tested against the scalar oracle.
//!    Any `^=` outside `crates/gf` needs an explicit
//!    `// raw-xor-ok: <reason>` marker on the same line; `MUL_TABLE`
//!    may not be referenced outside `crates/gf` at all.
//! 4. **no entropy-seeded RNGs** — every run must reproduce from one
//!    `u64` seed, so `thread_rng`, `rand::rng()`, `from_entropy` and
//!    `from_os_rng` are banned everywhere; randomness is plumbed through
//!    `apec_ec::rng::{seeded, derive, fork}` instead.
//!
//! The pass is lexical (comment/string-aware line scanning), not a full
//! parse: deliberately simple enough to audit by eye, strict enough to
//! fail CI on policy drift.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match lint(Path::new(".")) {
            Ok(()) => {
                println!("xtask lint: ok");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprint!("{report}");
                eprintln!("xtask lint: FAILED");
                ExitCode::from(1)
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown command {other:?} (expected: lint)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

/// Directories scanned for Rust sources, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "xtask/src"];

/// Paths (prefix match, `/`-normalised) where `unsafe` code is permitted.
const UNSAFE_ALLOWED: &[&str] = &["crates/gf/src/kernels/"];

/// Path prefixes exempt from the raw-XOR/mul lint: the gf crate *is* the
/// kernel layer, and xtask must be able to name the patterns it greps for.
const RAW_XOR_EXEMPT: &[&str] = &["crates/gf/", "xtask/src/"];

/// Decode hot paths: non-test code here moves shard bytes, so buffer
/// clones (`.clone()` / `.to_vec(`) are banned — the repair executor's
/// whole point is a zero-allocation warm path. Legitimate small-object
/// copies (pattern keys, coefficient lists) carry a same-line
/// `// clone-ok: <reason>` marker.
const CLONE_BANNED: &[&str] = &[
    "crates/rs/src/",
    "crates/lrc/src/",
    "crates/xor/src/",
    "crates/core/src/code.rs",
    "crates/ec/src/plan.rs",
];

fn lint(root: &Path) -> Result<(), String> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut report = String::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                let _ = writeln!(report, "{rel}: unreadable: {e}");
                continue;
            }
        };
        lint_file(&rel, &text, &mut report);
    }

    for rel in crate_roots(root) {
        let text = std::fs::read_to_string(root.join(&rel)).unwrap_or_default();
        let gate = text.contains("#![forbid(unsafe_code)]") || text.contains("#![deny(unsafe_code)]");
        if !gate {
            let _ = writeln!(
                report,
                "{rel}: crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]"
            );
        }
    }

    if report.is_empty() {
        Ok(())
    } else {
        Err(report)
    }
}

/// Every crate root (lib.rs and bin main files) that must pin the
/// unsafe-code gate.
fn crate_roots(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = entry.path().join(candidate);
                if p.is_file() {
                    out.push(
                        p.strip_prefix(root)
                            .unwrap_or(&p)
                            .to_string_lossy()
                            .replace('\\', "/"),
                    );
                }
            }
            // bin targets (e.g. crates/bench/src/bin/*.rs)
            let bins = entry.path().join("src/bin");
            if let Ok(bin_entries) = std::fs::read_dir(&bins) {
                for b in bin_entries.flatten() {
                    let p = b.path();
                    if p.extension().is_some_and(|e| e == "rs") {
                        out.push(
                            p.strip_prefix(root)
                                .unwrap_or(&p)
                                .to_string_lossy()
                                .replace('\\', "/"),
                        );
                    }
                }
            }
        }
    }
    if root.join("src/lib.rs").is_file() {
        out.push("src/lib.rs".to_string());
    }
    out.sort();
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Skip build artifacts; everything else under the scan roots is
            // source.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One source line with comments and string literals blanked out, plus the
/// comment text kept separately (markers like `SAFETY:` live in comments).
struct ScrubbedLine {
    /// Code with comments/strings replaced by spaces.
    code: String,
    /// The raw line, for marker searches.
    raw: String,
}

/// Strips `//` comments, `/* */` comments and string/char literals so the
/// policy patterns only match real code. Line-oriented; block comments may
/// span lines.
fn scrub(text: &str) -> Vec<ScrubbedLine> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for raw in text.lines() {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut i = 0;
        let mut in_str = false;
        let mut in_char = false;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            if in_block_comment {
                if c == '*' && next == Some('/') {
                    in_block_comment = false;
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            } else if in_str {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else {
                    if c == '"' {
                        in_str = false;
                    }
                    code.push(' ');
                    i += 1;
                }
            } else if in_char {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else {
                    if c == '\'' {
                        in_char = false;
                    }
                    code.push(' ');
                    i += 1;
                }
            } else if c == '/' && next == Some('/') {
                // Rest of the line is a comment.
                break;
            } else if c == '/' && next == Some('*') {
                in_block_comment = true;
                code.push_str("  ");
                i += 2;
            } else if c == '"' {
                in_str = true;
                code.push(' ');
                i += 1;
            } else if c == '\'' {
                // Distinguish char literals from lifetimes: a lifetime is
                // `'` + ident not followed by a closing `'`.
                let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                    && bytes.get(i + 2).copied() != Some('\'');
                if is_lifetime {
                    code.push(c);
                    i += 1;
                } else {
                    in_char = true;
                    code.push(' ');
                    i += 1;
                }
            } else {
                code.push(c);
                i += 1;
            }
        }
        // Strings/chars do not span lines in this codebase; reset to be safe.
        out.push(ScrubbedLine {
            code,
            raw: raw.to_string(),
        });
    }
    out
}

fn lint_file(rel: &str, text: &str, report: &mut String) {
    let lines = scrub(text);
    let unsafe_allowed = UNSAFE_ALLOWED.iter().any(|p| rel.starts_with(p));
    let xor_exempt = RAW_XOR_EXEMPT.iter().any(|p| rel.starts_with(p));
    let clone_banned = CLONE_BANNED.iter().any(|p| rel.starts_with(p));
    // The clone ban covers only shipping code: everything before the first
    // `#[cfg(test)]` line (test modules sit at the bottom of each file).
    let test_start = lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();

        if clone_banned
            && idx < test_start
            && (code.contains(".clone()") || code.contains(".to_vec("))
            && !line.raw.contains("clone-ok:")
        {
            let _ = writeln!(
                report,
                "{rel}:{lineno}: buffer clone in a decode hot path — reuse \
                 pooled scratch/Arc instead (or add `// clone-ok: <reason>` \
                 for a provably small copy)"
            );
        }

        if contains_word(code, "unsafe") {
            // Attribute/lint mentions (`unsafe_code`, `unsafe_op_in_unsafe_fn`)
            // are configuration, not unsafe code.
            let is_code = contains_unsafe_keyword(code);
            if is_code && !unsafe_allowed {
                let _ = writeln!(
                    report,
                    "{rel}:{lineno}: `unsafe` outside crates/gf/src/kernels/ — \
                     convert to safe code or move it into the kernel layer"
                );
            } else if is_code && is_unsafe_block(code) && !has_safety_comment(&lines, idx) {
                let _ = writeln!(
                    report,
                    "{rel}:{lineno}: unsafe block without a `// SAFETY:` comment \
                     (same line or within the 5 lines above)"
                );
            }
        }

        // Entropy-seeded generators break run reproducibility; no path is
        // exempt — `apec_ec::rng` itself only wraps `seed_from_u64`.
        for banned in ["thread_rng", "from_entropy", "from_os_rng"] {
            if contains_word(code, banned) {
                let _ = writeln!(
                    report,
                    "{rel}:{lineno}: entropy-seeded RNG `{banned}` — plumb a \
                     seed through apec_ec::rng::{{seeded, derive, fork}}"
                );
            }
        }
        if code.contains("rand::rng(") {
            let _ = writeln!(
                report,
                "{rel}:{lineno}: entropy-seeded RNG `rand::rng()` — plumb a \
                 seed through apec_ec::rng::{{seeded, derive, fork}}"
            );
        }

        if !xor_exempt {
            if code.contains("^=") && !line.raw.contains("raw-xor-ok:") {
                let _ = writeln!(
                    report,
                    "{rel}:{lineno}: raw `^=` outside apec_gf kernels — use \
                     apec_gf::xor_slice (or add `// raw-xor-ok: <reason>`)"
                );
            }
            if contains_word(code, "MUL_TABLE") {
                let _ = writeln!(
                    report,
                    "{rel}:{lineno}: raw `MUL_TABLE` lookup outside apec_gf — \
                     use apec_gf::mul_slice / mul_slice_xor"
                );
            }
        }
    }
}

/// `needle` appears in `hay` delimited by non-identifier characters.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// `unsafe` used as a keyword (fn qualifier, block, impl, trait), as
/// opposed to appearing inside identifiers like `unsafe_code`.
fn contains_unsafe_keyword(code: &str) -> bool {
    contains_word(code, "unsafe")
}

/// Heuristic: the line opens an unsafe *block* (`unsafe {`), rather than
/// declaring an `unsafe fn`/`unsafe impl`/`unsafe trait`.
fn is_unsafe_block(code: &str) -> bool {
    let Some(pos) = code.find("unsafe") else {
        return false;
    };
    let rest = code[pos + "unsafe".len()..].trim_start();
    rest.is_empty() || rest.starts_with('{')
}

/// A `SAFETY:` marker on the same line or within the five preceding lines.
fn has_safety_comment(lines: &[ScrubbedLine], idx: usize) -> bool {
    let from = idx.saturating_sub(5);
    lines[from..=idx].iter().any(|l| l.raw.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let lines = scrub("let x = \"unsafe ^= MUL_TABLE\"; // unsafe ^=\nlet y = 1;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("^="));
        assert!(lines[0].raw.contains("unsafe"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn scrub_handles_block_comments_across_lines() {
        let lines = scrub("a /* start\nstill ^= comment\nend */ b");
        assert!(lines[0].code.starts_with("a "));
        assert!(!lines[1].code.contains("^="));
        assert!(lines[2].code.contains('b'));
    }

    #[test]
    fn scrub_keeps_lifetimes() {
        let lines = scrub("fn f<'a>(x: &'a [u8]) -> &'a [u8] { x }");
        assert!(lines[0].code.contains("'a"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!contains_word("unsafe_op_in_unsafe_fn", "unsafe"));
    }

    #[test]
    fn unsafe_block_detection() {
        assert!(is_unsafe_block("    unsafe {"));
        assert!(is_unsafe_block("    unsafe"));
        assert!(is_unsafe_block("    let v = unsafe { f() };"));
        assert!(!is_unsafe_block("unsafe fn g() {"));
        assert!(!is_unsafe_block("unsafe impl Send for T {}"));
    }

    #[test]
    fn safety_comment_window() {
        let lines = scrub("// SAFETY: fine\nlet a = 0;\nunsafe { f() }");
        assert!(has_safety_comment(&lines, 2));
        let lines = scrub("let a = 0;\nunsafe { f() }");
        assert!(!has_safety_comment(&lines, 1));
    }

    #[test]
    fn lint_flags_unmarked_xor_and_mul_table() {
        let mut report = String::new();
        lint_file(
            "crates/demo/src/lib.rs",
            "*d ^= *s;\nlet t = MUL_TABLE[0];\n*d ^= *s; // raw-xor-ok: test\n",
            &mut report,
        );
        assert!(report.contains("raw `^=`"));
        assert!(report.contains("MUL_TABLE"));
        // the marked line is not reported twice
        assert_eq!(report.matches("raw `^=`").count(), 1);
    }

    #[test]
    fn lint_flags_hot_path_clones_outside_tests() {
        let mut report = String::new();
        lint_file(
            "crates/rs/src/lib.rs",
            "let a = buf.clone();\nlet b = key.to_vec(); // clone-ok: tiny key\n\
             #[cfg(test)]\nlet c = buf.clone();\n",
            &mut report,
        );
        assert_eq!(
            report.matches("decode hot path").count(),
            1,
            "report: {report}"
        );
        assert!(report.contains(":1:"), "report: {report}");
    }

    #[test]
    fn clone_lint_only_covers_hot_paths() {
        let mut report = String::new();
        lint_file(
            "crates/cluster/src/store.rs",
            "let a = buf.clone();\n",
            &mut report,
        );
        assert!(report.is_empty(), "unexpected report: {report}");
    }

    #[test]
    fn lint_flags_entropy_seeded_rngs() {
        let mut report = String::new();
        lint_file(
            "crates/demo/src/lib.rs",
            "let mut a = rand::rng();\nlet mut b = thread_rng();\n\
             let c = StdRng::from_entropy();\nlet d = StdRng::from_os_rng();\n\
             let ok = apec_ec::rng::seeded(7);\n",
            &mut report,
        );
        assert_eq!(report.matches("entropy-seeded RNG").count(), 4, "report: {report}");
        assert!(report.contains("thread_rng"));
        assert!(report.contains("from_entropy"));
        assert!(report.contains("from_os_rng"));
    }

    #[test]
    fn rng_lint_spares_seeded_namespaces() {
        let mut report = String::new();
        lint_file(
            "crates/demo/src/lib.rs",
            // `rand::rngs::StdRng` must not trip the `rand::rng(` pattern,
            // and mentions inside comments/strings never count.
            "use rand::rngs::StdRng;\nlet s = \"thread_rng\"; // thread_rng\n",
            &mut report,
        );
        assert!(report.is_empty(), "unexpected report: {report}");
    }

    #[test]
    fn lint_allows_gf_kernels() {
        let mut report = String::new();
        lint_file(
            "crates/gf/src/kernels/x86.rs",
            "// SAFETY: bounded\nunsafe { f() }\n*d ^= *s;\n",
            &mut report,
        );
        assert!(report.is_empty(), "unexpected report: {report}");
    }

    #[test]
    fn lint_rejects_unsafe_outside_kernels() {
        let mut report = String::new();
        lint_file("crates/ec/src/lib.rs", "unsafe { f() }\n", &mut report);
        assert!(report.contains("outside crates/gf/src/kernels/"));
    }
}
