//! Workspace helper tasks, invoked as `cargo xtask <command>`.
//!
//! `lint` is the soundness gate that rustc cannot express as a built-in
//! lint. Since PR 5 it is a token-tree semantic pass (see `lint/mod.rs`),
//! enforcing:
//!
//! 1. **unsafe containment** — `unsafe` only under `crates/gf/src/kernels/`,
//!    every block carrying a `// SAFETY:` comment, every other crate root
//!    pinning `#![forbid(unsafe_code)]`;
//! 2. **kernel confinement** — raw `^=` / `MUL_TABLE` stay inside apec_gf;
//! 3. **reproducibility** — entropy-seeded RNGs banned everywhere;
//! 4. **zero-copy decode** — shard-buffer clones banned on hot paths;
//! 5. **panic-freedom** — `unwrap`/`expect`/`panic!`-family macros and
//!    shard-buffer `[]` indexing banned in non-test decode/repair/read
//!    code, waived only by `// panic-ok: <invariant>` (inventoried via
//!    `--report panics.json`, ratcheted against `xtask/panic_baseline.json`);
//! 6. **checked arithmetic** — byte/op counters use `saturating_*`/
//!    `checked_*` or carry `// wrap-ok: <reason>`;
//! 7. **concurrency hygiene** — `Ordering::Relaxed` confined to
//!    `ec::parallel`, `static mut` banned, crossbeam-scope types witnessed
//!    by `assert_send_sync`;
//! 8. **hot-path allocation** — `vec!`/`to_vec`/`with_capacity`/`collect`
//!    banned inside `encode_into`/`apply_into` bodies (the session layer's
//!    zero-allocation contract), waived only by `// alloc-ok: <reason>`.
//!
//! Usage: `cargo xtask lint [--report <path>] [--baseline <path>]
//! [--write-baseline] [--no-ratchet]`

#![forbid(unsafe_code)]

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let opts = match lint::Options::parse(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::run(Path::new("."), &opts) {
                Ok(summary) => {
                    for line in summary {
                        println!("xtask lint: {line}");
                    }
                    println!("xtask lint: ok");
                    ExitCode::SUCCESS
                }
                Err(report) => {
                    eprint!("{report}");
                    eprintln!("xtask lint: FAILED");
                    ExitCode::from(1)
                }
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown command {other:?} (expected: lint)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--report <path>] [--write-baseline] [--no-ratchet]");
            ExitCode::from(2)
        }
    }
}
