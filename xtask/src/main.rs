//! Workspace helper tasks, invoked as `cargo xtask <command>`.
//!
//! `lint` is the soundness gate that rustc cannot express as a built-in
//! lint. Since PR 7 it is a call-graph-aware whole-workspace pass (lexer
//! → scopes → symbols → call graph → policies; see `lint/mod.rs`),
//! enforcing eleven policies:
//!
//! 1. **unsafe containment** — `unsafe` only under `crates/gf/src/kernels/`,
//!    every block carrying a `// SAFETY:` comment, every other crate root
//!    pinning `#![forbid(unsafe_code)]`;
//! 2. **kernel confinement** — raw `^=` / `MUL_TABLE` stay inside apec_gf;
//! 3. **reproducibility** — entropy-seeded RNGs banned everywhere;
//! 4. **zero-copy decode** — shard-buffer clones banned on hot paths;
//! 5. **transitive panic-freedom** — no `unwrap`/`expect`/`panic!`-family
//!    macro or shard-buffer `[]` indexing *reachable* from a serving root
//!    (`decode`, `reconstruct*`, `plan_repair`/`execute_plan`,
//!    `read_object`/`repair_object`/`repair_node`), body-local scope rules
//!    included; every diagnostic carries the root→hazard call chain;
//!    waived only by `// panic-ok: <invariant>` (inventoried via
//!    `--report panics.json`, ratcheted against `xtask/panic_baseline.json`
//!    and `xtask/transitive_baseline.json`);
//! 6. **checked arithmetic** — byte/op counters use `saturating_*`/
//!    `checked_*` or carry `// wrap-ok: <reason>`;
//! 7. **concurrency hygiene** — `Ordering::Relaxed` confined to the
//!    declarative `RELAXED_ALLOWED` table (each entry carrying an ordering
//!    justification, stale entries rejected), `static mut` banned,
//!    crossbeam-scope types witnessed by `assert_send_sync`;
//! 8. **transitive hot-path allocation** — `vec!`/`to_vec`/`with_capacity`/
//!    `collect` banned in everything reachable from `encode_into`/
//!    `apply_into` (the session layer's zero-allocation contract), waived
//!    only by `// alloc-ok: <reason>`;
//! 9. **dead-waiver hygiene** — a waiver marker that no longer suppresses
//!    any finding is itself an error (stale waivers re-arm silently);
//! 10. **static lock order** — every acquisition site maps to a typed lock
//!    class (`lint/locks.rs`); held-lock sets propagate along the call
//!    graph from the serving/maintenance roots, and order cycles, declared
//!    rank inversions, and same-class re-acquisition are flagged with
//!    root→acquire→acquire traces; waived only by `// lock-ok: <invariant>`
//!    (ratcheted against `xtask/lock_baseline.json`, each waived cross-lock
//!    site backed by a loom model);
//! 11. **blocking-under-lock** — file/socket I/O, `fsync`, and the frame
//!    transport are banned while any non-`io_ok` guard is live, guard
//!    lifetimes tracked through bindings, temporaries, and early `drop`.
//!
//! `bench-check` validates the `BENCH_*.json` artifacts the bench suites
//! write against per-bench schemas (see `bench.rs`), including the
//! `lint-stats` document `lint --stats` emits.
//!
//! Usage:
//!   `cargo xtask lint [--report <path>] [--sarif <path>] [--baseline <path>]
//!    [--transitive-baseline <path>] [--lock-baseline <path>] [--stats <path>]
//!    [--enforce-time-budget] [--write-baseline] [--no-ratchet]`
//!   `cargo xtask bench-check [paths...]`

#![forbid(unsafe_code)]

mod bench;
mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let opts = match lint::Options::parse(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::run(Path::new("."), &opts) {
                Ok(summary) => {
                    for line in summary {
                        println!("xtask lint: {line}");
                    }
                    println!("xtask lint: ok");
                    ExitCode::SUCCESS
                }
                Err(report) => {
                    eprint!("{report}");
                    eprintln!("xtask lint: FAILED");
                    ExitCode::from(1)
                }
            }
        }
        Some("bench-check") => match bench::run(&args[1..]) {
            Ok(_) => {
                println!("xtask bench-check: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask bench-check: {e}");
                ExitCode::from(1)
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown command {other:?} (expected: lint, bench-check)");
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo xtask lint [--report <path>] [--sarif <path>] \
                 [--lock-baseline <path>] [--stats <path>] [--enforce-time-budget] \
                 [--write-baseline] [--no-ratchet] | cargo xtask bench-check [paths...]"
            );
            ExitCode::from(2)
        }
    }
}
