//! Findings, the machine-readable waiver inventory (`--report
//! panics.json`), and the CI ratchet against `xtask/panic_baseline.json`.
//!
//! xtask is deliberately dependency-free, so the JSON here is written and
//! read by hand. The schema is kept flat on purpose:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "total_waivers": 12,
//!   "rules": { "panic-freedom": 9, "shard-index": 2, "checked-arith": 1 },
//!   "waivers": [
//!     { "rule": "panic-freedom", "file": "crates/rs/src/lib.rs",
//!       "line": 42, "invariant": "matrix proven invertible above" }
//!   ]
//! }
//! ```
//!
//! The committed baseline (`xtask/panic_baseline.json`) uses the same
//! schema with `waivers` omitted. The ratchet fails CI when any rule's
//! waiver count *rises* above the baseline; falling counts print a
//! reminder to re-run `cargo xtask lint --write-baseline` so the ratchet
//! tightens and the slack cannot be spent later.

use std::collections::BTreeMap;
use std::fmt;

/// One lint observation: either a hard error (fails the run) or a waived
/// site (allowed by marker, but inventoried and ratcheted).
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    /// Error message, or the waiver's stated invariant/reason.
    pub detail: String,
    pub waived: bool,
}

impl Finding {
    pub fn error(file: &str, line: u32, rule: &'static str, detail: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            detail,
            waived: false,
        }
    }

    pub fn waived(file: &str, line: u32, rule: &'static str, invariant: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            detail: invariant,
            waived: true,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.detail)
        } else {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.detail)
        }
    }
}

/// Per-rule waiver counts, ordered for stable output.
pub fn waiver_counts(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for f in findings.iter().filter(|f| f.waived) {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises the waiver inventory. `include_sites` controls whether the
/// per-site `waivers` array is emitted (reports: yes; baseline: no).
pub fn render_inventory(findings: &[Finding], include_sites: bool) -> String {
    let counts = waiver_counts(findings);
    let total: usize = counts.values().sum();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"total_waivers\": {total},\n"));
    out.push_str("  \"rules\": {");
    let mut first = true;
    for (rule, n) in &counts {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{rule}\": {n}"));
    }
    out.push_str(if counts.is_empty() { "}" } else { "\n  }" });
    if include_sites {
        out.push_str(",\n  \"waivers\": [");
        let mut sites: Vec<&Finding> = findings.iter().filter(|f| f.waived).collect();
        sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let mut first = true;
        for f in sites {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"invariant\": \"{}\" }}",
                f.rule,
                json_escape(&f.file),
                f.line,
                json_escape(&f.detail)
            ));
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Minimal parser for the baseline schema: extracts the `"rules"` object's
/// `"name": count` pairs. Tolerates whitespace/ordering but nothing fancy —
/// the file is machine-written by `--write-baseline`.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let rules_at = text
        .find("\"rules\"")
        .ok_or_else(|| "baseline missing \"rules\" object".to_string())?;
    let open = text[rules_at..]
        .find('{')
        .map(|o| rules_at + o)
        .ok_or_else(|| "baseline \"rules\" has no '{'".to_string())?;
    let close = text[open..]
        .find('}')
        .map(|c| open + c)
        .ok_or_else(|| "baseline \"rules\" has no '}'".to_string())?;
    let body = &text[open + 1..close];
    let mut out = BTreeMap::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, count) = pair
            .split_once(':')
            .ok_or_else(|| format!("bad baseline entry: {pair:?}"))?;
        let name = name.trim().trim_matches('"').to_string();
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("bad baseline count in: {pair:?}"))?;
        out.insert(name, count);
    }
    Ok(out)
}

/// The ratchet: no rule's waiver count may exceed its baseline; rules
/// absent from the baseline get a budget of zero. Returns Err lines for
/// CI, and informational lines when counts fell (tighten the baseline).
pub fn ratchet(
    findings: &[Finding],
    baseline: &BTreeMap<String, usize>,
) -> Result<Vec<String>, Vec<String>> {
    let counts = waiver_counts(findings);
    let mut errors = Vec::new();
    let mut notes = Vec::new();
    for (rule, &n) in &counts {
        let budget = baseline.get(*rule).copied().unwrap_or(0);
        if n > budget {
            errors.push(format!(
                "ratchet: rule `{rule}` has {n} waivers, baseline allows {budget} — \
                 convert the new sites to typed errors instead of waiving them"
            ));
        } else if n < budget {
            notes.push(format!(
                "ratchet: rule `{rule}` is below baseline ({n} < {budget}) — run \
                 `cargo xtask lint --write-baseline` to lock in the improvement"
            ));
        }
    }
    for (rule, &budget) in baseline {
        if budget > 0 && !counts.contains_key(rule.as_str()) {
            notes.push(format!(
                "ratchet: rule `{rule}` has 0 waivers, baseline allows {budget} — run \
                 `cargo xtask lint --write-baseline` to lock in the improvement"
            ));
        }
    }
    if errors.is_empty() {
        Ok(notes)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(rule: &'static str) -> Finding {
        Finding::waived("crates/rs/src/lib.rs", 7, rule, "why".into())
    }

    #[test]
    fn inventory_round_trips_through_parser() {
        let findings = vec![w("panic-freedom"), w("panic-freedom"), w("checked-arith")];
        let json = render_inventory(&findings, true);
        assert!(json.contains("\"total_waivers\": 3"));
        assert!(json.contains("\"invariant\": \"why\""));
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed.get("panic-freedom"), Some(&2));
        assert_eq!(parsed.get("checked-arith"), Some(&1));
    }

    #[test]
    fn baseline_omits_sites() {
        let json = render_inventory(&[w("panic-freedom")], false);
        assert!(!json.contains("waivers\": ["));
        assert!(parse_baseline(&json).is_ok());
    }

    #[test]
    fn empty_inventory_is_valid() {
        let json = render_inventory(&[], true);
        assert!(json.contains("\"total_waivers\": 0"));
        assert!(parse_baseline(&json).unwrap().is_empty());
    }

    #[test]
    fn ratchet_blocks_growth_and_notes_shrink() {
        let mut base = BTreeMap::new();
        base.insert("panic-freedom".to_string(), 1);
        // Growth: 2 > 1.
        let err = ratchet(&[w("panic-freedom"), w("panic-freedom")], &base).unwrap_err();
        assert_eq!(err.len(), 1, "{err:?}");
        // Exact: fine, no notes.
        assert!(ratchet(&[w("panic-freedom")], &base).unwrap().is_empty());
        // Shrink: ok plus a tighten note.
        let notes = ratchet(&[], &base).unwrap();
        assert_eq!(notes.len(), 1, "{notes:?}");
        // New rule with no budget: blocked.
        assert!(ratchet(&[w("shard-index")], &BTreeMap::new()).is_err());
    }

    #[test]
    fn escaping_is_applied_to_invariants() {
        let f = Finding::waived("a.rs", 1, "panic-freedom", "say \"hi\"\\path".into());
        let json = render_inventory(&[f], true);
        assert!(json.contains("say \\\"hi\\\"\\\\path"));
    }
}
