//! Reachability policies over the call graph: transitive panic-freedom
//! and hot-path allocation propagation.
//!
//! The body-local policies in [`super::rules`] only see the file they are
//! scoped to: an `unwrap()` inside a helper that `decode` calls — but
//! that lives outside `PANIC_SCOPE` — escaped every check. This pass
//! closes that gap by re-expressing both policies as graph reachability:
//!
//! * **`transitive-panic`** — every function reachable from a serving
//!   root ([`PANIC_ROOTS`]: `decode`, `reconstruct`/`reconstruct_tiered`,
//!   `plan_repair`/`execute_plan`, `read_object`/`repair_object`, tier
//!   `read_object`/`repair_node`, the daemon's `handle_request`/
//!   `serve_get`/`serve_degraded_get`, and the maintenance subsystem's
//!   `scrub_tick`/`drain_repairs`/`run_scrub`) must be panic-free;
//! * **`transitive-alloc`** — every function reachable from
//!   [`ALLOC_ROOTS`] (`encode_into`, `apply_into`) must not allocate
//!   fresh buffers.
//!
//! Every diagnostic carries the full call-path trace from the root to
//! the hazard, one hop per edge with the call-site line —
//!
//! ```text
//! rs::lib::decode →[crates/rs/src/lib.rs:231] gf::matrix::solve
//!   → `.unwrap()` via line 203
//! ```
//!
//! — so a finding is never "somewhere under decode" but an exact,
//! reviewable chain. Waivers reuse the site markers (`panic-ok:` /
//! `alloc-ok:`); waived sites are inventoried and ratcheted against
//! `xtask/transitive_baseline.json`, separately from the body-local
//! baseline, so transitive coverage can tighten without perturbing the
//! PR 5 ratchet.

use super::callgraph::CallGraph;
use super::report::Finding;
use super::symbols::SymbolTable;
use std::collections::{BTreeSet, VecDeque};

/// Serving-path roots for the transitive panic-freedom policy: matched
/// by function name, every non-test definition counts (trait method,
/// inherent method, free fn alike).
pub const PANIC_ROOTS: &[&str] = &[
    "decode",
    "reconstruct",
    "reconstruct_tiered",
    "plan_repair",
    "execute_plan",
    "read_object",
    "repair_object",
    "repair_node",
    "handle_request",
    "serve_get",
    "serve_degraded_get",
    "scrub_tick",
    "drain_repairs",
    "run_scrub",
];

/// Zero-allocation roots: the session layer's hot encode contract.
pub const ALLOC_ROOTS: &[&str] = &["encode_into", "apply_into"];

/// Shortest-path BFS forest from every root: `parent[v]` is the hop that
/// first reached `v` (`None` for roots and unreached nodes).
struct Reach {
    /// Visit state per fn id.
    visited: Vec<bool>,
    /// `(caller id, call-site line)` of the first edge into each node.
    parent: Vec<Option<(usize, u32)>>,
    /// Reached node ids in visit order (deterministic).
    order: Vec<usize>,
}

fn reach(table: &SymbolTable, graph: &CallGraph, roots: &[&str]) -> Reach {
    let n = table.fns.len();
    let mut r = Reach {
        visited: vec![false; n],
        parent: vec![None; n],
        order: Vec::new(),
    };
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, f) in table.fns.iter().enumerate() {
        if !f.in_test && roots.contains(&f.name.as_str()) {
            r.visited[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(v) = queue.pop_front() {
        r.order.push(v);
        for e in &graph.edges[v] {
            if !r.visited[e.callee] {
                r.visited[e.callee] = true;
                r.parent[e.callee] = Some((v, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    r
}

/// `crates/rs/src/lib.rs` → `rs::lib` — a compact module-ish qualifier
/// for traces.
fn qualify(file: &str) -> String {
    let mut s = file;
    s = s.strip_prefix("crates/").unwrap_or(s);
    s = s.strip_suffix(".rs").unwrap_or(s);
    let parts: Vec<&str> = s.split('/').filter(|p| *p != "src").collect();
    parts.join("::")
}

/// Formats the root→node call chain, one `→[file:line]` hop per edge.
fn trace(table: &SymbolTable, r: &Reach, mut node: usize) -> String {
    let mut hops: Vec<String> = Vec::new();
    loop {
        let f = &table.fns[node];
        let label = format!("{}::{}", qualify(&f.file), f.name);
        match r.parent[node] {
            // The edge annotation belongs in front of the CALLEE: the
            // caller invokes it at `caller-file:line`.
            Some((caller, line)) => {
                hops.push(format!("→[{}:{line}] {label}", table.fns[caller].file));
                node = caller;
            }
            None => {
                hops.push(label);
                break;
            }
        }
    }
    hops.reverse();
    hops.join(" ")
}

/// Runs both reachability policies, appending findings (errors for
/// unwaived hazards, waived entries for marked ones — both carrying the
/// trace).
pub fn run(table: &SymbolTable, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let policies: [(&'static str, &[&str], &[Vec<super::callgraph::Hazard>], &str, &str); 2] = [
        (
            "transitive-panic",
            PANIC_ROOTS,
            &graph.panic_hazards,
            "return a typed EcError/ClusterError/TierError along the chain",
            "panic-ok",
        ),
        (
            "transitive-alloc",
            ALLOC_ROOTS,
            &graph.alloc_hazards,
            "hoist the buffer to the caller or the session arena",
            "alloc-ok",
        ),
    ];
    for (rule, roots, hazards, fix, marker_name) in policies {
        let r = reach(table, graph, roots);
        let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
        for &node in &r.order {
            let f = &table.fns[node];
            for h in &hazards[node] {
                if !seen.insert((f.file.clone(), h.line, h.what)) {
                    continue;
                }
                let chain = trace(table, &r, node);
                match &h.waiver {
                    Some(inv) => findings.push(Finding::waived(
                        &f.file,
                        h.line,
                        rule,
                        format!("{inv} [trace: {chain} → `{}` via line {}]", h.what, h.line),
                    )),
                    None => findings.push(Finding::error(
                        &f.file,
                        h.line,
                        rule,
                        format!(
                            "`{}` reachable from a serving root: {chain} → `{}` via line {} — \
                             {fix} (or justify with `// {marker_name}: <reason>`)",
                            h.what, h.what, h.line
                        ),
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::callgraph::build;
    use crate::lint::lexer::lex;
    use crate::lint::scopes::analyze;

    fn run_on(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let mut t = SymbolTable::default();
        t.add_file("crates/x/src/lib.rs", 0, &lexed, &scopes);
        let files = vec![("crates/x/src/lib.rs".to_string(), lexed, scopes)];
        let g = build(&t, &files);
        let mut f = Vec::new();
        run(&t, &g, &mut f);
        f
    }

    fn errors(f: &[Finding]) -> Vec<&Finding> {
        f.iter().filter(|x| !x.waived).collect()
    }

    #[test]
    fn two_deep_unwrap_under_decode_is_caught_with_trace() {
        let src = "fn decode(x: Option<u8>) { mid(x); }\n\
                   fn mid(x: Option<u8>) { deep(x); }\n\
                   fn deep(x: Option<u8>) { x.unwrap(); }\n";
        let f = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "transitive-panic");
        assert_eq!(e[0].line, 3);
        // The full chain, arrows annotating each CALLEE with its call site.
        assert!(
            e[0].detail.contains(
                "x::lib::decode →[crates/x/src/lib.rs:1] x::lib::mid \
                 →[crates/x/src/lib.rs:2] x::lib::deep"
            ),
            "{}",
            e[0].detail
        );
    }

    #[test]
    fn unreachable_hazard_is_silent() {
        let src = "fn decode() { safe(); }\nfn safe() {}\nfn lonely(x: Option<u8>) { x.unwrap(); }\n";
        assert!(errors(&run_on(src)).is_empty());
    }

    #[test]
    fn waiver_covers_the_transitive_finding_too() {
        let src = "fn decode(x: Option<u8>) { deep(x); }\n\
                   fn deep(x: Option<u8>) {\n    x.unwrap() // panic-ok: caller validated\n}\n";
        let f = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
        let w: Vec<_> = f.iter().filter(|x| x.waived).collect();
        assert_eq!(w.len(), 1);
        assert!(w[0].detail.contains("caller validated"));
        assert!(w[0].detail.contains("trace:"), "waived entries keep the trace");
    }

    #[test]
    fn cycles_terminate_and_still_report() {
        let src = "fn decode() { a(); }\n\
                   fn a() { b(); }\n\
                   fn b(x: Option<u8>) { a(); x.unwrap(); }\n";
        let f = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert!(e[0].detail.contains("x::lib::a"), "{}", e[0].detail);
    }

    #[test]
    fn alloc_policy_runs_from_encode_into() {
        let src = "fn encode_into(p: &mut [u8]) { fill(p); }\n\
                   fn fill(p: &mut [u8]) { let v = p.to_vec(); }\n\
                   fn decode(p: &[u8]) { other(p); }\n\
                   fn other(p: &[u8]) { let v = p.to_vec(); }\n";
        let f = run_on(src);
        let e = errors(&f);
        // Only the chain under encode_into is an alloc violation; decode's
        // helper allocating is fine (panic policy does not ban allocs).
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "transitive-alloc");
        assert_eq!(e[0].line, 2);
    }

    #[test]
    fn dyn_dispatch_fans_to_every_impl() {
        let src = "trait Code { fn inner(&self); }\n\
                   struct A; struct B;\n\
                   impl Code for A { fn inner(&self) {} }\n\
                   impl Code for B { fn inner(&self) { oops(); } }\n\
                   fn oops() { panic!(\"boom\") }\n\
                   fn decode(c: &dyn Code) { c.inner(); }\n";
        let f = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert!(e[0].detail.contains("x::lib::oops"), "{}", e[0].detail);
    }
}
