//! SARIF 2.1.0 output for the lint pass (`--sarif <path>`).
//!
//! CI uploads the file through `github/codeql-action/upload-sarif`, which
//! turns every finding into an inline PR annotation at its file:line —
//! reviewers see "`.unwrap()` reachable from a serving root: …trace…"
//! on the offending line instead of digging through job logs.
//!
//! Hand-rolled JSON (xtask stays dependency-free). The document is the
//! minimal valid subset the upload action consumes: one run, a driver
//! with per-rule metadata, and one `result` per finding. Unwaived
//! findings map to `level: "error"`; waived sites are emitted as
//! `level: "note"` so the annotation layer shows the accepted-risk
//! inventory without failing anything.

use super::report::Finding;
use std::collections::BTreeMap;

/// Static rule metadata: id → short description. Rules missing here
/// still render (the id doubles as the description) so a new policy
/// cannot silently break SARIF emission.
const RULE_HELP: &[(&str, &str)] = &[
    ("unsafe-containment", "unsafe code outside the audited gf kernel layer"),
    ("safety-comment", "unsafe block without a SAFETY: comment"),
    ("mul-table", "raw MUL_TABLE lookup outside apec_gf"),
    ("raw-xor", "hand-rolled XOR outside apec_gf kernels"),
    ("entropy-rng", "entropy-seeded RNG breaks reproducibility"),
    ("clone-hot-path", "buffer clone in a decode hot path"),
    ("panic-freedom", "panic hazard on a decode/repair/read path"),
    ("shard-index", "shard-buffer []-indexing on a serving path"),
    ("checked-arith", "unchecked arithmetic on a cost counter"),
    ("relaxed-ordering", "Ordering::Relaxed outside ec::parallel"),
    ("static-mut", "mutable static"),
    ("send-sync-assert", "crossbeam scope without Send/Sync witnesses"),
    ("crate-root-gate", "crate root lacks the unsafe_code gate"),
    ("hot-path-alloc", "fresh allocation inside encode_into/apply_into"),
    ("transitive-panic", "panic hazard transitively reachable from a serving root"),
    ("transitive-alloc", "allocation transitively reachable from encode_into/apply_into"),
    ("transitive-lock-order", "lock acquired against the declared order, or on a cycle that can deadlock"),
    ("transitive-lock-io", "blocking I/O or re-acquisition while a lock guard is held"),
    ("relaxed-allowed-stale", "RELAXED_ALLOWED exemption matching no scanned file"),
    ("dead-waiver", "waiver marker that no longer suppresses any finding"),
    ("parse", "file skipped: unbalanced delimiters"),
    ("io", "unreadable file"),
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full findings list (errors and waived sites) as a SARIF
/// 2.1.0 document.
pub fn render(findings: &[Finding]) -> String {
    // Rules actually present, in stable order.
    let mut rules: BTreeMap<&str, &str> = BTreeMap::new();
    for f in findings {
        let help = RULE_HELP
            .iter()
            .find(|(id, _)| *id == f.rule)
            .map(|(_, h)| *h)
            .unwrap_or(f.rule);
        rules.insert(f.rule, help);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"apec-xtask-lint\",\n");
    out.push_str(
        "          \"informationUri\": \"https://example.invalid/DESIGN.md#13-static-analysis-architecture\",\n",
    );
    out.push_str("          \"rules\": [");
    let mut first = true;
    for (id, help) in &rules {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            esc(id),
            esc(help)
        ));
    }
    out.push_str(if rules.is_empty() { "]\n" } else { "\n          ]\n" });
    out.push_str("        }\n      },\n");
    out.push_str("      \"results\": [");
    let mut first = true;
    for f in findings {
        if !first {
            out.push(',');
        }
        first = false;
        let level = if f.waived { "note" } else { "error" };
        let text = if f.waived {
            format!("waived: {}", f.detail)
        } else {
            f.detail.clone()
        };
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{level}\",\n          \
             \"message\": {{ \"text\": \"{}\" }},\n          \"locations\": [\n            {{\n              \
             \"physicalLocation\": {{\n                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n                \
             \"region\": {{ \"startLine\": {} }}\n              }}\n            }}\n          ]\n        }}",
            esc(f.rule),
            esc(&text),
            esc(&f.file),
            f.line.max(1)
        ));
    }
    out.push_str(if findings.is_empty() { "]\n" } else { "\n      ]\n" });
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_errors_and_notes() {
        let findings = vec![
            Finding::error("crates/rs/src/lib.rs", 7, "transitive-panic", "trace \"x\"".into()),
            Finding::waived("crates/gf/src/matrix.rs", 9, "panic-freedom", "why".into()),
        ];
        let s = render(&findings);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"transitive-panic\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"note\""));
        assert!(s.contains("waived: why"));
        assert!(s.contains("trace \\\"x\\\""), "message text is escaped");
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn empty_findings_is_valid_sarif() {
        let s = render(&[]);
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"rules\": []"));
    }

    #[test]
    fn file_level_findings_clamp_to_line_one() {
        let s = render(&[Finding::error("a.rs", 0, "crate-root-gate", "gate".into())]);
        assert!(s.contains("\"startLine\": 1"));
    }
}
