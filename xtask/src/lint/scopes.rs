//! Token-tree scope analysis: matched delimiters, `#[cfg(test)]` item
//! masking, and `unsafe` block/declaration classification.
//!
//! This is the "parse" half of the linter. It does not build a full AST;
//! the rules only need three structural facts the old line scanner could
//! not compute:
//!
//! 1. **delimiter matching** — every `(`/`[`/`{` token knows its closing
//!    partner, so attributes and item bodies have exact extents even when
//!    rustfmt splits them across lines;
//! 2. **test masking** — any item under an attribute that mentions `test`
//!    (`#[cfg(test)]`, `#[test]`, `#[cfg(any(test, …))]`) is marked, so
//!    shipping-code policies skip test modules wherever they sit in the
//!    file (the PR 2 scanner assumed tests were a suffix of the file);
//! 3. **unsafe classification** — an `unsafe` keyword token is a *block*
//!    iff the next token is `{`, regardless of line breaks.

use super::lexer::{Lexed, Tok, TokKind};

/// Structural facts about one file's token stream.
pub struct Scopes {
    /// `close[i]` = index of the matching closer for an opener at `i`.
    /// Only read through [`Scopes::matching`].
    close: Vec<Option<usize>>,
    /// `test[i]` = token `i` belongs to a `test`-attributed item.
    test: Vec<bool>,
    /// True when delimiters did not balance (rules should stay quiet
    /// about scope-sensitive findings rather than misreport).
    pub unbalanced: bool,
}

impl Scopes {
    /// Matching closer index for the opener at `i`, if `i` opens a group.
    pub fn matching(&self, i: usize) -> Option<usize> {
        self.close.get(i).copied().flatten()
    }

    /// Whether token `i` sits inside a `#[cfg(test)]`-style item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test.get(i).copied().unwrap_or(false)
    }
}

fn is_open(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{")
}

fn is_close(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), ")" | "]" | "}")
}

/// Computes matched delimiters and the test mask for a token stream.
pub fn analyze(lexed: &Lexed) -> Scopes {
    let toks = &lexed.toks;
    let n = toks.len();
    let mut close = vec![None; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut unbalanced = false;
    for (i, t) in toks.iter().enumerate() {
        if is_open(t) {
            stack.push(i);
        } else if is_close(t) {
            match stack.pop() {
                Some(open) => close[open] = Some(i),
                None => unbalanced = true,
            }
        }
    }
    if !stack.is_empty() {
        unbalanced = true;
    }

    let mut test = vec![false; n];
    if !unbalanced {
        if file_is_test_only(toks, &close) {
            test.fill(true);
        } else {
            mark_test_items(toks, &close, &mut test);
        }
    }
    Scopes {
        close,
        test,
        unbalanced,
    }
}

/// Whether the file opens with an inner `#![cfg(test)]`-style attribute:
/// the whole file then compiles only under test (the idiom for a
/// `mod tests;` split out into its own `tests.rs`), so every token is
/// masked. Leading inner attributes are scanned in order; `test` under a
/// `not(..)` group does not count, mirroring [`mark_test_items`].
fn file_is_test_only(toks: &[Tok], close: &[Option<usize>]) -> bool {
    let mut i = 0usize;
    while toks.get(i).is_some_and(|t| t.text == "#")
        && toks.get(i + 1).is_some_and(|t| t.text == "!")
        && toks.get(i + 2).is_some_and(|t| t.text == "[")
    {
        let Some(attr_close) = close[i + 2] else {
            return false;
        };
        if mentions_test_unnegated(toks, close, i + 3, attr_close) {
            return true;
        }
        i = attr_close + 1;
    }
    false
}

/// Whether a `test` ident occurs in `toks[start..end]` outside every
/// `not(..)` group (`#[cfg(not(test))]` ships in non-test builds and
/// must NOT mask).
fn mentions_test_unnegated(
    toks: &[Tok],
    close: &[Option<usize>],
    start: usize,
    end: usize,
) -> bool {
    let mut negated: Vec<(usize, usize)> = Vec::new();
    for j in start..end {
        if toks[j].kind == TokKind::Ident
            && toks[j].text == "not"
            && toks.get(j + 1).is_some_and(|t| t.text == "(")
        {
            if let Some(c) = close[j + 1] {
                negated.push((j + 1, c));
            }
        }
    }
    toks[start..end].iter().enumerate().any(|(k, t)| {
        let idx = start + k;
        t.kind == TokKind::Ident
            && t.text == "test"
            && !negated.iter().any(|&(a, b)| idx > a && idx < b)
    })
}

/// Marks every token of every item attributed with something naming
/// `test`. Outer attributes only (`#[..]`); inner `#![..]` configure the
/// enclosing scope and mark nothing here — except the file-leading case
/// handled by [`file_is_test_only`].
fn mark_test_items(toks: &[Tok], close: &[Option<usize>], test: &mut [bool]) {
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        let is_outer_attr = toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
            && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct);
        if !is_outer_attr {
            i += 1;
            continue;
        }
        let Some(attr_close) = close[i + 1] else {
            i += 1;
            continue;
        };
        // `test` under a `not(..)` group means the item ships in non-test
        // builds: `#[cfg(not(test))]` must NOT mask (that was a body-local
        // false negative — shipping code silently inherited the test
        // exemption). Only a `test` ident outside every `not(..)` counts.
        if !mentions_test_unnegated(toks, close, i + 2, attr_close) {
            i = attr_close + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_close + 1;
        while j < n && toks[j].text == "#" && toks.get(j + 1).is_some_and(|t| t.text == "[") {
            match close[j + 1] {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item extends to its body's `{…}` or to a terminating `;`,
        // skipping over any intermediate groups (generics' brackets,
        // argument lists, where clauses with parenthesised bounds …).
        let mut end = j;
        while end < n {
            let t = &toks[end];
            if t.text == "{" {
                end = close[end].unwrap_or(n - 1);
                break;
            }
            if t.text == "(" || t.text == "[" {
                end = match close[end] {
                    Some(c) => c + 1,
                    None => n,
                };
                continue;
            }
            if t.text == ";" {
                break;
            }
            // A closer at this level means the attribute sat at the end of
            // a group (malformed); stop rather than leak the mask.
            if is_close(t) {
                end = end.saturating_sub(1);
                break;
            }
            end += 1;
        }
        let end = end.min(n - 1);
        for flag in test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
}

/// What an `unsafe` keyword token introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` — needs a `SAFETY:` comment.
    Block,
    /// `unsafe fn` / `unsafe impl` / `unsafe trait` / `unsafe extern`.
    Decl,
}

/// Classifies the `unsafe` keyword at token index `i` (which the caller
/// has verified is an `unsafe` ident). Line breaks between `unsafe` and
/// `{` do not matter — that is the point of the rewrite.
pub fn classify_unsafe(toks: &[Tok], i: usize) -> UnsafeKind {
    match toks.get(i + 1) {
        Some(t) if t.text == "{" => UnsafeKind::Block,
        _ => UnsafeKind::Decl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lexer::lex;

    fn mask_of(src: &str) -> (Lexed, Scopes) {
        let l = lex(src);
        let s = analyze(&l);
        (l, s)
    }

    #[test]
    fn delimiters_match_across_lines() {
        let (l, s) = mask_of("fn f(\n  a: usize,\n) {\n  g(a);\n}");
        let open = l.toks.iter().position(|t| t.text == "{").unwrap();
        let close = s.matching(open).unwrap();
        assert_eq!(l.toks[close].text, "}");
        assert!(!s.unbalanced);
    }

    #[test]
    fn cfg_test_mod_is_masked_even_mid_file() {
        let src = "fn ship() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn also_ship() { y.unwrap(); }";
        let (l, s) = mask_of(src);
        let unwraps: Vec<usize> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(s.in_test(unwraps[0]), "unwrap inside #[cfg(test)] mod");
        assert!(!s.in_test(unwraps[1]), "unwrap after the test mod ships");
    }

    #[test]
    fn test_attribute_with_stacked_attrs() {
        let src = "#[test]\n#[allow(dead_code)]\nfn t() { a.unwrap() }\nfn s() {}";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(s.in_test(u));
        let ship = l.toks.iter().position(|t| t.text == "s").unwrap();
        assert!(!s.in_test(ship));
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn t() { a.unwrap() }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(s.in_test(u));
    }

    #[test]
    fn attribute_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse x::y;\nfn ship() { a.unwrap() }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!s.in_test(u), "mask must stop at the use-item's `;`");
    }

    #[test]
    fn non_test_cfg_does_not_mask() {
        let src = "#[cfg(miri)]\nfn m() { a.unwrap() }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!s.in_test(u));
    }

    #[test]
    fn cfg_not_test_is_shipping_code() {
        // `#[cfg(not(test))]` compiles exactly when tests do NOT: masking
        // it as test code was a false negative for every body-local rule.
        let src = "#[cfg(not(test))]\nfn ship() { a.unwrap() }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!s.in_test(u), "cfg(not(test)) items ship and must be linted");
    }

    #[test]
    fn test_outside_a_not_group_still_masks() {
        let src = "#[cfg(any(test, not(feature = \"x\")))]\nfn t() { a.unwrap() }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(s.in_test(u), "`test` outside the not(..) group masks");
    }

    #[test]
    fn doc_comment_between_attr_and_item_does_not_break_masking() {
        // The mask follows the attributed *item*, not the attribute's line
        // extent: a doc comment (which owns no tokens) between them must
        // not detach the mask from the item.
        let src = "#[cfg(test)]\n/// doc text with unwrap() and shards[0]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } }\nfn ship(y: Option<u8>) { y.unwrap(); }";
        let (l, s) = mask_of(src);
        let unwraps: Vec<usize> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(s.in_test(unwraps[0]), "doc comment must not detach the mask");
        assert!(!s.in_test(unwraps[1]), "the next item still ships");
    }

    #[test]
    fn file_leading_inner_cfg_test_masks_everything() {
        let src = "#![cfg(test)]\nuse x::y;\nfn helper(a: Option<u8>) { a.unwrap(); }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(s.in_test(u), "whole tests.rs file compiles only under test");
    }

    #[test]
    fn inner_cfg_not_test_does_not_mask_the_file() {
        let src = "#![cfg(not(test))]\nfn ship(a: Option<u8>) { a.unwrap(); }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!s.in_test(u), "cfg(not(test)) files ship and must be linted");
    }

    #[test]
    fn non_leading_inner_attr_does_not_mask() {
        let src = "fn ship(a: Option<u8>) { a.unwrap(); }";
        let (l, s) = mask_of(src);
        let u = l.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!s.in_test(u));
    }

    #[test]
    fn unsafe_block_vs_decl_across_lines() {
        let src = "unsafe\n{\n f()\n}\nunsafe fn g() {}\nunsafe impl Send for X {}";
        let (l, _) = mask_of(src);
        let us: Vec<usize> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unsafe")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(classify_unsafe(&l.toks, us[0]), UnsafeKind::Block);
        assert_eq!(classify_unsafe(&l.toks, us[1]), UnsafeKind::Decl);
        assert_eq!(classify_unsafe(&l.toks, us[2]), UnsafeKind::Decl);
    }

    #[test]
    fn unbalanced_input_is_flagged_not_fatal() {
        let (_, s) = mask_of("fn f( {");
        assert!(s.unbalanced);
    }
}
