//! The policy rules, evaluated over one file's token stream.
//!
//! Four legacy rules (unsafe containment + SAFETY comments, raw XOR /
//! `MUL_TABLE` confinement, entropy-RNG ban, hot-path clone ban) are
//! re-expressed over tokens so they become span-accurate, and three
//! semantic policies are new in this pass:
//!
//! * **panic-freedom** — `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` and `[]`-indexing of
//!   shard/stripe buffers are banned in non-test code on the
//!   decode/repair/read paths ([`PANIC_SCOPE`]); escape with
//!   `// panic-ok: <invariant>` (inventoried and ratcheted).
//! * **checked arithmetic** — `+` / `*` / `+=` / `*=` on the byte/op
//!   counter fields ([`ARITH_FIELDS`]) must be `checked_*` /
//!   `saturating_*` or carry `// wrap-ok: <reason>`.
//! * **concurrency hygiene** — `Ordering::Relaxed` only in
//!   `ec::parallel`'s segment counter, `static mut` banned outright, and
//!   files that spawn onto a crossbeam scope must carry compile-time
//!   `assert_send_sync::<T>()` witnesses.
//! * **hot-path allocation** — fresh buffer allocation (`vec!`,
//!   `.to_vec()`, `with_capacity`, `.collect()`) is banned inside the
//!   bodies of fns named `encode_into` / `apply_into`
//!   ([`HOT_ALLOC_FNS`]): those are the session layer's zero-allocation
//!   contract. Escape with `// alloc-ok: <reason>`.

use super::lexer::{CommentLine, Lexed, TokKind};
use super::report::Finding;
use super::scopes::{classify_unsafe, Scopes, UnsafeKind};

/// Directories scanned for Rust sources, relative to the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "xtask/src", "xtask/tests"];

/// Paths (prefix match, `/`-normalised) where `unsafe` code is permitted.
pub const UNSAFE_ALLOWED: &[&str] = &["crates/gf/src/kernels/"];

/// Path prefixes exempt from the raw-XOR/mul lint: the gf crate *is* the
/// kernel layer. (The PR 2 scanner also had to exempt xtask itself — its
/// pattern strings looked like code to a line scanner. Tokens fixed that.)
pub const RAW_XOR_EXEMPT: &[&str] = &["crates/gf/"];

/// Decode hot paths where shard-buffer clones are banned (see PR 3).
pub const CLONE_BANNED: &[&str] = &[
    "crates/rs/src/",
    "crates/lrc/src/",
    "crates/xor/src/",
    "crates/core/src/code.rs",
    "crates/ec/src/plan.rs",
];

/// Decode/repair/read paths under the panic-freedom policy: code here
/// must keep serving (possibly approximately) under failures, so it
/// reports typed `EcError` / `ClusterError` / `TierError` values instead
/// of panicking. Non-test code only.
pub const PANIC_SCOPE: &[&str] = &[
    "crates/ec/src/plan.rs",
    "crates/ec/src/parallel",
    "crates/ec/src/stripe.rs",
    "crates/ec/src/traits.rs",
    "crates/rs/src/",
    "crates/lrc/src/",
    "crates/xor/src/",
    "crates/cluster/src/store.rs",
    "crates/cluster/src/planner.rs",
    "crates/cluster/src/engine.rs",
    "crates/tier/src/engine.rs",
    "crates/recovery/src/",
    "crates/store/src/",
    "crates/maint/src/",
    "crates/serve/src/",
];

/// Identifier names that denote shard/stripe buffers: `[]`-indexing one
/// of these in a panic-scoped file is an out-of-bounds panic hazard on
/// the degraded path (erasure patterns control the indices).
pub const SHARD_INDEX_NAMES: &[&str] = &["shards", "shard", "stripe", "seg", "segments"];

/// Files whose integer counters feed the paper's cost accounting; sums
/// here must never silently wrap.
pub const ARITH_SCOPE: &[&str] = &[
    "crates/ec/src/iostats.rs",
    "crates/tier/src/cost.rs",
    "crates/tier/src/engine.rs",
    "crates/tier/src/report.rs",
    "crates/analysis/src/writecost.rs",
];

/// The counter fields the checked-arithmetic policy protects.
pub const ARITH_FIELDS: &[&str] = &[
    "read_ops",
    "read_bytes",
    "write_ops",
    "write_bytes",
    "hot_byte_ticks",
    "cold_byte_ticks",
    "logical_byte_ticks",
    "hot_only_byte_ticks",
];

/// One module granted a `Ordering::Relaxed` exemption, with the ordering
/// argument that makes Relaxed sufficient there. Declarative so the
/// policy is reviewable in one place and entries can be staleness-checked
/// against the scanned tree (see [`stale_relaxed_entries`]).
pub struct RelaxedAllowed {
    /// Path prefix the exemption covers.
    pub path: &'static str,
    /// One-line ordering justification — why Relaxed cannot reorder into
    /// a bug in this module.
    pub justification: &'static str,
}

/// The only modules allowed to use `Ordering::Relaxed`.
pub const RELAXED_ALLOWED: &[RelaxedAllowed] = &[
    RelaxedAllowed {
        path: "crates/ec/src/parallel",
        justification: "monotonic segment-claim counter; crossbeam scope join provides the \
                        happens-before edge (loom-modeled in claim_model)",
    },
    RelaxedAllowed {
        path: "crates/serve/src/metrics.rs",
        justification: "monotonic gauges/counters read only for reporting; no cross-field \
                        invariant depends on ordering",
    },
    RelaxedAllowed {
        path: "crates/maint/src/status.rs",
        justification: "monotonic maintenance counters; readers tolerate stale snapshots by \
                        design",
    },
    RelaxedAllowed {
        path: "crates/maint/src/cache.rs",
        justification: "hit/miss statistics only; cache correctness is carried by the shard \
                        mutexes, not the counters",
    },
];

/// Entries in [`RELAXED_ALLOWED`] matching none of the scanned files:
/// stale exemptions that must be deleted, not silently kept as latent
/// policy holes.
pub fn stale_relaxed_entries(scanned: &[String]) -> Vec<&'static RelaxedAllowed> {
    RELAXED_ALLOWED
        .iter()
        .filter(|e| !scanned.iter().any(|rel| rel.starts_with(e.path)))
        .collect()
}

/// Crates under the concurrency-hygiene policy.
pub const CONCURRENCY_SCOPE: &[&str] = &[
    "crates/ec/",
    "crates/rs/",
    "crates/lrc/",
    "crates/xor/",
    "crates/cluster/",
    "crates/tier/",
    "crates/recovery/",
    "crates/store/",
    "crates/maint/",
    "crates/serve/",
];

/// Fns whose bodies are the sessions' zero-allocation encode contract:
/// they receive caller-owned output buffers, so allocating fresh parity
/// storage inside them silently reintroduces the per-call cost the
/// session arena exists to remove. Matched by name anywhere in the tree
/// (trait impls and inherent methods alike).
pub const HOT_ALLOC_FNS: &[&str] = &["encode_into", "apply_into"];

fn in_scope(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Marks every token inside the body of a fn named in [`HOT_ALLOC_FNS`].
/// The body `{` is found by walking the signature and skipping bracketed
/// groups (argument list, slice types in the return position); a `;`
/// first means a trait method declaration with no body.
fn hot_alloc_mask(toks: &[super::lexer::Tok], scopes: &Scopes) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let named_fn = toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && HOT_ALLOC_FNS.contains(&t.text.as_str())
            });
        if !named_fn {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    body = Some(j);
                    break;
                }
                if t.text == ";" {
                    break;
                }
                if t.text == "(" || t.text == "[" {
                    match scopes.matching(j) {
                        Some(c) => {
                            j = c + 1;
                            continue;
                        }
                        None => break,
                    }
                }
            }
            j += 1;
        }
        if let Some(open) = body {
            if let Some(close) = scopes.matching(open) {
                for flag in mask.iter_mut().take(close).skip(open + 1) {
                    *flag = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Marker comment (`panic-ok:` …) on the token's line or the line above —
/// rustfmt may split a call chain so the marker sits on the receiver line.
/// Shared with the call-graph pass so one marker waives both the
/// body-local and the transitive finding at a site.
pub fn marker<'a>(comments: &'a [CommentLine], line: u32, name: &str) -> Option<&'a str> {
    comments
        .iter()
        .filter(|c| c.line == line || c.line + 1 == line)
        .find_map(|c| {
            let at = c.text.find(name)?;
            Some(c.text[at + name.len()..].trim())
        })
}

/// Records a `hot-path-alloc` finding (or its `alloc-ok:` waiver) for an
/// allocation token inside an [`HOT_ALLOC_FNS`] body.
fn push_hot_alloc(
    rel: &str,
    line: u32,
    what: &str,
    comments: &[CommentLine],
    findings: &mut Vec<Finding>,
) {
    let rule = "hot-path-alloc";
    match marker(comments, line, "alloc-ok:") {
        Some(reason) if !reason.is_empty() => {
            findings.push(Finding::waived(rel, line, rule, reason.to_string()));
        }
        _ => findings.push(Finding::error(
            rel,
            line,
            rule,
            format!(
                "fresh allocation (`{what}`) inside an encode_into/apply_into hot \
                 path — write into the caller's buffers or the session arena \
                 instead (or justify with `// alloc-ok: <reason>`)"
            ),
        )),
    }
}

/// Every waiver marker the policies understand. Used by the dead-waiver
/// check: a marker that suppresses no finding is stale and must go.
pub const WAIVER_MARKERS: &[&str] =
    &["panic-ok:", "alloc-ok:", "clone-ok:", "wrap-ok:", "raw-xor-ok:", "lock-ok:"];

/// Flags waiver markers that no longer suppress anything.
///
/// `waived_lines` holds the line numbers of every *waived* finding in
/// this file, across all passes (body-local and transitive). A marker on
/// comment line `L` is live iff some waived finding sits on `L` (trailing
/// comment) or `L + 1` (marker on the line above — the same window
/// [`marker`] reads). Anything else is a stale waiver: the hazard it
/// excused was fixed or moved, and leaving the marker behind would
/// silently re-arm if a new hazard appeared on that line.
///
/// Doc comments are exempt (their text is prose that may *mention* a
/// marker; after the lexer strips `//`, their text starts with `/`, `!`
/// or `*`), and so are comments inside `#[cfg(test)]` item extents.
pub fn detect_dead_waivers(
    rel: &str,
    lexed: &Lexed,
    scopes: &Scopes,
    waived_lines: &std::collections::BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) {
    // Line ranges covered by test-masked items (comments own no tokens,
    // so the token mask is projected onto lines).
    let mut test_ranges: Vec<(u32, u32)> = Vec::new();
    let mut run_start: Option<(u32, u32)> = None;
    for (i, t) in lexed.toks.iter().enumerate() {
        if scopes.in_test(i) {
            run_start = match run_start {
                Some((a, _)) => Some((a, t.line)),
                None => Some((t.line, t.line)),
            };
        } else if let Some(r) = run_start.take() {
            test_ranges.push(r);
        }
    }
    if let Some(r) = run_start {
        test_ranges.push(r);
    }

    for c in &lexed.comments {
        let text = c.text.trim_start();
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue; // doc comment prose
        }
        let Some(m) = WAIVER_MARKERS.iter().find(|m| c.text.contains(*m)) else {
            continue;
        };
        if test_ranges.iter().any(|&(a, b)| c.line >= a && c.line <= b) {
            continue;
        }
        if waived_lines.contains(&c.line) || waived_lines.contains(&(c.line + 1)) {
            continue;
        }
        findings.push(Finding::error(
            rel,
            c.line,
            "dead-waiver",
            format!(
                "`// {m}` waiver suppresses no finding — the hazard it excused is \
                 gone; delete the marker (stale waivers re-arm silently)"
            ),
        ));
    }
}

/// A `SAFETY:` comment on the same line or within the five lines above.
fn has_safety_comment(comments: &[CommentLine], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.line <= line && c.line + 5 >= line && c.text.contains("SAFETY:"))
}

/// Runs every rule on one lexed file, appending to `findings`.
pub fn lint_file(rel: &str, lexed: &Lexed, scopes: &Scopes, findings: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let comments = &lexed.comments;
    let unsafe_allowed = in_scope(rel, UNSAFE_ALLOWED);
    let xor_exempt = in_scope(rel, RAW_XOR_EXEMPT);
    let clone_banned = in_scope(rel, CLONE_BANNED);
    let panic_scoped = in_scope(rel, PANIC_SCOPE);
    let arith_scoped = in_scope(rel, ARITH_SCOPE);
    let concurrency_scoped = in_scope(rel, CONCURRENCY_SCOPE);

    if scopes.unbalanced {
        findings.push(Finding::error(
            rel,
            0,
            "parse",
            "unbalanced delimiters — file skipped by scope-sensitive rules".into(),
        ));
        return;
    }

    let hot_alloc = hot_alloc_mask(toks, scopes);
    let mut uses_crossbeam_spawn = false;
    let mut has_send_sync_assert = false;

    for (i, t) in toks.iter().enumerate() {
        let line = t.line;
        let in_test = scopes.in_test(i);
        let ident = |j: usize| toks.get(j).filter(|t| t.kind == TokKind::Ident);
        let punct = |j: usize, s: &str| toks.get(j).is_some_and(|t| t.kind == TokKind::Punct && t.text == s);

        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unsafe" => {
                    if !unsafe_allowed {
                        findings.push(Finding::error(
                            rel,
                            line,
                            "unsafe-containment",
                            "`unsafe` outside crates/gf/src/kernels/ — convert to safe code \
                             or move it into the kernel layer"
                                .into(),
                        ));
                    } else if classify_unsafe(toks, i) == UnsafeKind::Block
                        && !has_safety_comment(comments, line)
                    {
                        findings.push(Finding::error(
                            rel,
                            line,
                            "safety-comment",
                            "unsafe block without a `// SAFETY:` comment (same line or within \
                             the 5 lines above)"
                                .into(),
                        ));
                    }
                }
                "MUL_TABLE" if !xor_exempt => {
                    findings.push(Finding::error(
                        rel,
                        line,
                        "mul-table",
                        "raw `MUL_TABLE` lookup outside apec_gf — use apec_gf::mul_slice / \
                         mul_slice_xor"
                            .into(),
                    ));
                }
                "thread_rng" | "from_entropy" | "from_os_rng" => {
                    findings.push(Finding::error(
                        rel,
                        line,
                        "entropy-rng",
                        format!(
                            "entropy-seeded RNG `{}` — plumb a seed through \
                             apec_ec::rng::{{seeded, derive, fork}}",
                            t.text
                        ),
                    ));
                }
                "rand" if punct(i + 1, "::") => {
                    if ident(i + 2).is_some_and(|t| t.text == "rng") && punct(i + 3, "(") {
                        findings.push(Finding::error(
                            rel,
                            line,
                            "entropy-rng",
                            "entropy-seeded RNG `rand::rng()` — plumb a seed through \
                             apec_ec::rng::{seeded, derive, fork}"
                                .into(),
                        ));
                    }
                }
                // panic! / unreachable! / todo! / unimplemented! macros.
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if panic_scoped && !in_test && punct(i + 1, "!") =>
                {
                    let rule = "panic-freedom";
                    match marker(comments, line, "panic-ok:") {
                        Some(inv) if !inv.is_empty() => {
                            findings.push(Finding::waived(rel, line, rule, inv.to_string()));
                        }
                        _ => findings.push(Finding::error(
                            rel,
                            line,
                            rule,
                            format!(
                                "`{}!` on a decode/repair/read path — return a typed \
                                 EcError/ClusterError/TierError instead (or justify with \
                                 `// panic-ok: <invariant>`)",
                                t.text
                            ),
                        )),
                    }
                }
                // static mut — banned everywhere, no escape marker.
                "static" if ident(i + 1).is_some_and(|t| t.text == "mut") => {
                    findings.push(Finding::error(
                        rel,
                        line,
                        "static-mut",
                        "`static mut` — use an atomic or a lock; mutable statics race".into(),
                    ));
                }
                "Relaxed"
                    if concurrency_scoped
                        && !in_test
                        && !RELAXED_ALLOWED.iter().any(|e| rel.starts_with(e.path)) =>
                {
                    findings.push(Finding::error(
                        rel,
                        line,
                        "relaxed-ordering",
                        "`Ordering::Relaxed` outside ec::parallel's work counter — use \
                         Acquire/Release (and document the pairing), or move the counter \
                         into ec::parallel"
                            .into(),
                    ));
                }
                "crossbeam" => {
                    uses_crossbeam_spawn = uses_crossbeam_spawn
                        || toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "spawn");
                }
                "assert_send_sync" => has_send_sync_assert = true,
                // Fresh allocations inside encode_into/apply_into bodies.
                "vec" if hot_alloc[i] && !in_test && punct(i + 1, "!") => {
                    push_hot_alloc(rel, line, "vec![…]", comments, findings);
                }
                name @ ("to_vec" | "with_capacity" | "collect")
                    if hot_alloc[i] && !in_test && punct(i + 1, "(") =>
                {
                    push_hot_alloc(rel, line, name, comments, findings);
                }
                // Shard-buffer indexing: `shards[..]`, `stripe[..]`, …
                name if panic_scoped
                    && !in_test
                    && SHARD_INDEX_NAMES.contains(&name)
                    && punct(i + 1, "[")
                    // `let shards[..]` patterns don't exist; but skip
                    // attribute-ish positions where `[` opens a type.
                    && !punct(i.wrapping_sub(1), "#") =>
                {
                    let rule = "shard-index";
                    match marker(comments, line, "panic-ok:") {
                        Some(inv) if !inv.is_empty() => {
                            findings.push(Finding::waived(rel, line, rule, inv.to_string()));
                        }
                        _ => findings.push(Finding::error(
                            rel,
                            line,
                            rule,
                            format!(
                                "`{name}[…]` indexing on a decode/repair/read path — use \
                                 .get()/.get_mut() with a typed error (or justify with \
                                 `// panic-ok: <invariant>`)"
                            ),
                        )),
                    }
                }
                _ => {}
            },
            TokKind::Punct => match t.text.as_str() {
                "^=" if !xor_exempt => {
                    if marker(comments, line, "raw-xor-ok:").is_some() {
                        findings.push(Finding::waived(
                            rel,
                            line,
                            "raw-xor",
                            marker(comments, line, "raw-xor-ok:").unwrap_or("").to_string(),
                        ));
                    } else {
                        findings.push(Finding::error(
                            rel,
                            line,
                            "raw-xor",
                            "raw `^=` outside apec_gf kernels — use apec_gf::xor_slice (or \
                             add `// raw-xor-ok: <reason>`)"
                                .into(),
                        ));
                    }
                }
                "." if !in_test => {
                    if let Some(m) = ident(i + 1) {
                        if clone_banned && (m.text == "clone" || m.text == "to_vec") && punct(i + 2, "(") {
                            match marker(comments, line, "clone-ok:") {
                                Some(reason) if !reason.is_empty() => findings.push(
                                    Finding::waived(rel, line, "clone-hot-path", reason.into()),
                                ),
                                _ => findings.push(Finding::error(
                                    rel,
                                    line,
                                    "clone-hot-path",
                                    "buffer clone in a decode hot path — reuse pooled \
                                     scratch/Arc instead (or add `// clone-ok: <reason>` for \
                                     a provably small copy)"
                                        .into(),
                                )),
                            }
                        }
                        // .unwrap() / .expect() on panic-scoped paths.
                        if panic_scoped
                            && (m.text == "unwrap" || m.text == "expect")
                            && punct(i + 2, "(")
                        {
                            let rule = "panic-freedom";
                            match marker(comments, m.line, "panic-ok:") {
                                Some(inv) if !inv.is_empty() => findings.push(Finding::waived(
                                    rel,
                                    m.line,
                                    rule,
                                    inv.to_string(),
                                )),
                                _ => findings.push(Finding::error(
                                    rel,
                                    m.line,
                                    rule,
                                    format!(
                                        "`.{}()` on a decode/repair/read path — propagate a \
                                         typed error (`ok_or`/`?`) instead (or justify with \
                                         `// panic-ok: <invariant>`)",
                                        m.text
                                    ),
                                )),
                            }
                        }
                    }
                }
                op @ ("+" | "*" | "+=" | "*=") if arith_scoped && !in_test => {
                    // Counter arithmetic: the operand just before or after
                    // the operator is one of the protected fields.
                    let near_field = [i.wrapping_sub(1), i + 1]
                        .iter()
                        .filter_map(|&j| toks.get(j))
                        .any(|t| t.kind == TokKind::Ident && ARITH_FIELDS.contains(&t.text.as_str()));
                    if near_field {
                        match marker(comments, line, "wrap-ok:") {
                            Some(reason) if !reason.is_empty() => findings.push(Finding::waived(
                                rel,
                                line,
                                "checked-arith",
                                reason.into(),
                            )),
                            _ => findings.push(Finding::error(
                                rel,
                                line,
                                "checked-arith",
                                format!(
                                    "unchecked `{op}` on a byte/op counter — use \
                                     saturating_add/checked_mul (cost accounting must not \
                                     silently wrap) or justify with `// wrap-ok: <reason>`"
                                ),
                            )),
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    if uses_crossbeam_spawn && concurrency_scoped && !has_send_sync_assert {
        findings.push(Finding::error(
            rel,
            0,
            "send-sync-assert",
            "file spawns onto a crossbeam scope but has no \
             `assert_send_sync::<T>()` compile-time witnesses for the types \
             crossing the scope (see apec_ec::sync_assert)"
                .into(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lexer::lex;
    use crate::lint::scopes::analyze;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let mut f = Vec::new();
        lint_file(rel, &lexed, &scopes, &mut f);
        f
    }

    fn errors(f: &[Finding]) -> Vec<&Finding> {
        f.iter().filter(|x| !x.waived).collect()
    }

    #[test]
    fn unwrap_flagged_only_in_scope_and_outside_tests() {
        let src = "fn ship(x: Option<u8>) { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } }\n";
        let f = run("crates/rs/src/lib.rs", src);
        assert_eq!(errors(&f).len(), 1, "{f:?}");
        assert_eq!(errors(&f)[0].rule, "panic-freedom");
        assert_eq!(errors(&f)[0].line, 1);
        // Same code outside the panic scope: clean.
        assert!(errors(&run("crates/video/src/lib.rs", src)).is_empty());
    }

    #[test]
    fn panic_ok_marker_waives_and_is_inventoried() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap() // panic-ok: checked by caller\n}\n";
        let f = run("crates/lrc/src/lib.rs", src);
        assert!(errors(&f).is_empty(), "{f:?}");
        let w: Vec<_> = f.iter().filter(|x| x.waived).collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].detail, "checked by caller");
    }

    #[test]
    fn empty_panic_ok_invariant_does_not_waive() {
        let src = "fn f(x: Option<u8>) { x.unwrap() } // panic-ok:\n";
        let f = run("crates/lrc/src/lib.rs", src);
        assert_eq!(errors(&f).len(), 1, "a waiver must state its invariant");
    }

    #[test]
    fn marker_on_receiver_line_covers_split_chain() {
        let src = "fn f(x: Option<u8>) {\n    x // panic-ok: presence checked\n        .unwrap();\n}\n";
        let f = run("crates/lrc/src/lib.rs", src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { panic!(\"boom\") }\nfn g() { unreachable!() }\nfn h() { todo!() }\n";
        let f = run("crates/xor/src/rdp.rs", src);
        assert_eq!(errors(&f).len(), 3, "{f:?}");
    }

    #[test]
    fn shard_indexing_flagged_with_names_only() {
        let src = "fn f(shards: &[u8], other: &[u8]) { let _ = shards[0] + other[0]; }\n";
        let f = run("crates/cluster/src/store.rs", src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "shard-index");
    }

    #[test]
    fn checked_arith_flags_counter_fields() {
        let src = "fn f(io: &mut NodeIo, b: u64) {\n    io.read_bytes += b;\n    io.read_ops = io.read_ops.saturating_add(1);\n}\n";
        let f = run("crates/ec/src/iostats.rs", src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "checked-arith");
        assert_eq!(e[0].line, 2);
    }

    #[test]
    fn wrap_ok_waives_arith() {
        let src = "fn f(t: &mut NodeIo, n: &NodeIo) {\n    t.read_ops += n.read_ops; // wrap-ok: test fixture\n}\n";
        let f = run("crates/tier/src/report.rs", src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_ordering_confined_to_parallel() {
        let src = "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(errors(&run("crates/cluster/src/store.rs", src)).len(), 1);
        assert!(errors(&run("crates/ec/src/parallel.rs", src)).is_empty());
        // gf's SIMD-level cache is outside the concurrency scope.
        assert!(errors(&run("crates/gf/src/kernels/mod.rs", src)).is_empty());
    }

    #[test]
    fn static_mut_banned() {
        let f = run("crates/ec/src/lib.rs", "static mut X: u8 = 0;\n");
        assert_eq!(errors(&f).len(), 1);
        assert_eq!(errors(&f)[0].rule, "static-mut");
        assert!(errors(&run("crates/ec/src/lib.rs", "static X: u8 = 0;\n")).is_empty());
    }

    #[test]
    fn crossbeam_scope_requires_send_sync_witness() {
        let src = "fn f() { crossbeam::thread::scope(|s| { s.spawn(|_| {}); }).unwrap(); }\n";
        let f = run("crates/ec/src/parallel.rs", src);
        assert!(f.iter().any(|x| x.rule == "send-sync-assert" && !x.waived), "{f:?}");
        let ok = format!("const _: () = assert_send_sync::<u8>();\n{src}");
        let f = run("crates/ec/src/parallel.rs", &ok);
        assert!(!f.iter().any(|x| x.rule == "send-sync-assert"), "{f:?}");
    }

    #[test]
    fn unsafe_split_across_lines_is_still_a_block() {
        // Regression for the PR 2 line scanner: rustfmt may break between
        // `unsafe` and `{`; the SAFETY requirement must still bind.
        let src = "fn f() {\n    let v = unsafe\n    {\n        g()\n    };\n}\n";
        let f = run("crates/gf/src/kernels/x86.rs", src);
        assert_eq!(errors(&f).len(), 1, "{f:?}");
        assert_eq!(errors(&f)[0].rule, "safety-comment");
        let ok = "fn f() {\n    // SAFETY: bounded by caller\n    let v = unsafe\n    {\n        g()\n    };\n}\n";
        assert!(errors(&run("crates/gf/src/kernels/x86.rs", ok)).is_empty());
    }

    #[test]
    fn unsafe_outside_kernels_flagged_even_in_strings_not() {
        let f = run("crates/ec/src/lib.rs", "unsafe { f() }\n");
        assert_eq!(errors(&f)[0].rule, "unsafe-containment");
        assert!(errors(&run("crates/ec/src/lib.rs", "let s = \"unsafe\";\n")).is_empty());
    }

    #[test]
    fn legacy_rules_still_fire_on_tokens() {
        let src = "fn f(d: &mut [u8], s: &[u8]) {\n    d[0] ^= s[0];\n    let t = MUL_TABLE[0];\n    let r = thread_rng();\n}\n";
        let f = run("crates/analysis/src/lib.rs", src);
        let rules: Vec<&str> = errors(&f).iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"raw-xor"));
        assert!(rules.contains(&"mul-table"));
        assert!(rules.contains(&"entropy-rng"));
    }

    #[test]
    fn hot_path_alloc_flagged_inside_encode_into_only() {
        let src = "impl C {\n\
                   fn encode_into(&self, p: &mut [&mut [u8]]) {\n    let v = vec![vec![0u8; 4]; 2];\n}\n\
                   fn encode(&self) -> Vec<Vec<u8>> { vec![vec![0u8; 4]; 2] }\n\
                   }\n";
        let f = run("crates/rs/src/lib.rs", src);
        let e: Vec<_> = errors(&f)
            .into_iter()
            .filter(|x| x.rule == "hot-path-alloc")
            .collect();
        // Both `vec!` tokens on line 3 are flagged; the ones in `encode`
        // (line 5) are not — allocation is that path's contract.
        assert_eq!(e.len(), 2, "{f:?}");
        assert!(e.iter().all(|x| x.line == 3), "{e:?}");
    }

    #[test]
    fn hot_path_alloc_covers_collect_with_capacity_and_to_vec() {
        let src = "fn apply_into(&self, out: &mut [&mut [u8]]) {\n\
                   \x20   let a: Vec<u8> = x.iter().collect();\n\
                   \x20   let b = Vec::with_capacity(4);\n\
                   \x20   let c = s.to_vec();\n}\n";
        let f = run("crates/gf/src/matrix.rs", src);
        let e: Vec<_> = errors(&f)
            .into_iter()
            .filter(|x| x.rule == "hot-path-alloc")
            .collect();
        assert_eq!(e.len(), 3, "{f:?}");
    }

    #[test]
    fn alloc_ok_marker_waives_and_tests_are_exempt() {
        let src = "fn encode_into(&self) {\n\
                   \x20   // alloc-ok: wider than MAX_STACK_NODES never ships\n\
                   \x20   let v = heap.to_vec();\n}\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = vec![0u8; 4]; }\n\
                   fn encode_into() { let _ = vec![0u8; 4]; } }\n";
        let f = run("crates/ec/src/session.rs", src);
        assert!(
            !errors(&f).iter().any(|x| x.rule == "hot-path-alloc"),
            "{f:?}"
        );
        let w: Vec<_> = f
            .iter()
            .filter(|x| x.waived && x.rule == "hot-path-alloc")
            .collect();
        assert_eq!(w.len(), 1, "{f:?}");
        assert_eq!(w[0].detail, "wider than MAX_STACK_NODES never ships");
    }

    #[test]
    fn trait_declaration_without_body_is_not_masked() {
        // `fn encode_into(...) -> Result<(), EcError>;` has no body; the
        // next fn's allocations must not inherit the hot mask.
        let src = "trait T {\n\
                   fn encode_into(&self, p: &mut [&mut [u8]]) -> R;\n\
                   fn other(&self) -> Vec<u8> { v.to_vec() }\n\
                   }\n";
        let f = run("crates/ec/src/traits.rs", src);
        assert!(
            !f.iter().any(|x| x.rule == "hot-path-alloc"),
            "{f:?}"
        );
    }

    fn dead_waivers(rel: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let mut f = Vec::new();
        lint_file(rel, &lexed, &scopes, &mut f);
        let waived: std::collections::BTreeSet<u32> =
            f.iter().filter(|x| x.waived).map(|x| x.line).collect();
        let mut out = Vec::new();
        detect_dead_waivers(rel, &lexed, &scopes, &waived, &mut out);
        out
    }

    #[test]
    fn stale_waiver_is_flagged() {
        // The unwrap was fixed but the marker stayed behind.
        let src = "fn f(x: Option<u8>) {\n    // panic-ok: caller validated\n    let _ = x;\n}\n";
        let d = dead_waivers("crates/rs/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "dead-waiver");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn live_waiver_is_not_flagged() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap() // panic-ok: caller validated\n}\n";
        assert!(dead_waivers("crates/rs/src/lib.rs", src).is_empty());
        // Marker on the line above the hazard is the other live window.
        let src = "fn f(x: Option<u8>) {\n    // panic-ok: caller validated\n    x.unwrap();\n}\n";
        assert!(dead_waivers("crates/rs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_and_test_regions_are_exempt() {
        let src = "/// explains the `// panic-ok:` grammar\nfn f() {}\n\
                   #[cfg(test)]\nmod tests {\n    // panic-ok: fixture text\n    fn t() {}\n}\n";
        let d = dead_waivers("crates/rs/src/lib.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn clone_ban_respects_tests_anywhere_in_file() {
        let src = "#[cfg(test)]\nmod tests { fn t(b: &[u8]) { b.to_vec(); } }\n\
                   fn ship(b: &[u8]) -> Vec<u8> { b.to_vec() }\n";
        let f = run("crates/rs/src/lib.rs", src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].line, 3, "only the shipping to_vec counts");
    }
}
