//! A faithful, dependency-free Rust lexer for the lint pass.
//!
//! The PR 2 scanner was line-oriented: it reset string state at every
//! newline, so a `\`-continued string literal leaked its contents into
//! "code" (the scanner flagged its own test strings), and `unsafe` blocks
//! split across lines by rustfmt were matched by per-line heuristics.
//! This lexer produces real tokens with line/column spans — multi-line
//! strings, raw strings, nested block comments, lifetimes vs char
//! literals, compound operators — so every rule in [`super::rules`]
//! matches *code tokens*, never comment or literal text.
//!
//! It is not a full grammar: the parse layer on top
//! ([`super::scopes`]) only needs token streams plus matched delimiters.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `read_bytes`, …).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String / char / byte literal of any flavour. Text is NOT kept:
    /// literal contents must never match a code pattern.
    Lit,
    /// Punctuation, with compound operators pre-joined (`+=`, `::`, …).
    Punct,
}

/// One code token with its source position (1-based line, 0-based col).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Class of the token.
    pub kind: TokKind,
    /// Token text (empty for `Lit` — contents are deliberately dropped).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment line, for marker lookup (`SAFETY:`, `panic-ok:` …).
/// Multi-line block comments contribute one entry per source line.
#[derive(Debug, Clone)]
pub struct CommentLine {
    /// 1-based source line.
    pub line: u32,
    /// The comment text on that line (without delimiters).
    pub text: String,
}

/// Lexer output: the token stream and every comment line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comment text per line (markers live here).
    pub comments: Vec<CommentLine>,
}

/// Compound operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "->", "=>", "::", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Tokenizes `src`. Never fails: unexpected bytes become 1-char puncts so
/// the rules still see everything around them.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Tracks line numbers without a separate pass.
    macro_rules! bump {
        ($n:expr) => {{
            for k in 0..$n {
                if chars[i + k] == '\n' {
                    line += 1;
                }
            }
            i += $n;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment.
        if c == '/' && next == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(CommentLine {
                line,
                text: chars[start..j].iter().collect(),
            });
            bump!(j - i);
            continue;
        }

        // Block comment (nested, possibly multi-line).
        if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut seg_start = j;
            let mut seg_line = line;
            let mut cur_line = line;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        out.comments.push(CommentLine {
                            line: seg_line,
                            text: chars[seg_start..j].iter().collect(),
                        });
                        cur_line += 1;
                        seg_line = cur_line;
                        seg_start = j + 1;
                    }
                    j += 1;
                }
            }
            let seg_end = j.saturating_sub(2).max(seg_start);
            out.comments.push(CommentLine {
                line: seg_line,
                text: chars[seg_start..seg_end.min(chars.len())].iter().collect(),
            });
            bump!(j - i);
            continue;
        }

        // Identifier / keyword, or a literal prefix (r", b', br#" …).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let ident: String = chars[start..j].iter().collect();
            let after = chars.get(j).copied();

            // Raw identifier r#name (but r#" is a raw string).
            if ident == "r"
                && after == Some('#')
                && chars
                    .get(j + 1)
                    .is_some_and(|c| c.is_alphabetic() || *c == '_')
            {
                let mut k = j + 1;
                while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[j + 1..k].iter().collect(),
                    line,
                });
                bump!(k - i);
                continue;
            }

            // String-ish prefixes: r/b/c/br/cr/rb + quote or raw hashes.
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "c" | "br" | "cr" | "rb")
                && matches!(after, Some('"') | Some('#'));
            let is_byte_char = ident == "b" && after == Some('\'');
            if is_str_prefix {
                let tok_line = line;
                bump!(j - i); // consume the prefix
                if consume_string_or_raw(&chars, &mut i, &mut line) {
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
                // `#` that wasn't a raw string (e.g. `r #[..]` can't occur;
                // be safe): fall through by emitting the ident.
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: ident,
                    line: tok_line,
                });
                continue;
            }
            if is_byte_char {
                let tok_line = line;
                bump!(j - i);
                consume_char_literal(&chars, &mut i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }

            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            bump!(j - i);
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // Fractional part: `.` followed by a digit (not `..`, not a
            // method call like `1.min(..)`).
            if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
                j += 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: String::new(),
                line,
            });
            bump!(j - i);
            continue;
        }

        // Plain string literal (may span lines).
        if c == '"' {
            let tok_line = line;
            consume_plain_string(&chars, &mut i, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }

        // Lifetime vs char literal.
        if c == '\'' {
            let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_') && {
                // `'a` (no closing quote right after the ident run).
                let mut k = i + 1;
                while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                chars.get(k) != Some(&'\'')
            };
            if is_lifetime {
                let mut k = i + 1;
                while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i + 1..k].iter().collect(),
                    line,
                });
                bump!(k - i);
            } else {
                let tok_line = line;
                consume_char_literal(&chars, &mut i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line: tok_line,
                });
            }
            continue;
        }

        // Punctuation, compound first.
        let mut matched = false;
        for p in PUNCTS {
            let pl = p.chars().count();
            if i + pl <= chars.len() && chars[i..i + pl].iter().collect::<String>() == **p {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                });
                bump!(pl);
                matched = true;
                break;
            }
        }
        if !matched {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            bump!(1);
        }
    }
    out
}

/// Consumes a `"…"` or `#…#"…"#…#` (raw) literal at `*i`, updating the
/// line counter. Returns false if `*i` does not start a string.
fn consume_string_or_raw(chars: &[char], i: &mut usize, line: &mut u32) -> bool {
    match chars.get(*i) {
        Some('"') => {
            consume_plain_string(chars, i, line);
            true
        }
        Some('#') => {
            let mut hashes = 0usize;
            let mut j = *i;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) != Some(&'"') {
                return false;
            }
            j += 1;
            // Scan for `"` followed by `hashes` hashes.
            loop {
                match chars.get(j) {
                    None => break,
                    Some('"') => {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                        j += 1;
                    }
                    Some('\n') => {
                        *line += 1;
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            *i = j;
            true
        }
        _ => false,
    }
}

/// Consumes a non-raw `"…"` literal at `*i` (escapes, may span lines).
fn consume_plain_string(chars: &[char], i: &mut usize, line: &mut u32) {
    debug_assert_eq!(chars.get(*i), Some(&'"'));
    let mut j = *i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // Escaped newline (line continuation) still counts a line.
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    *i = j;
}

/// Consumes a `'…'` char literal at `*i` (escapes; never spans lines in
/// valid Rust, but tolerate it).
fn consume_char_literal(chars: &[char], i: &mut usize, line: &mut u32) {
    debug_assert_eq!(chars.get(*i), Some(&'\''));
    let mut j = *i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => {
                j += 1;
                break;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    *i = j;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_never_leak_tokens() {
        let l = lex("let x = \"unsafe ^= MUL_TABLE thread_rng\";");
        assert_eq!(idents(&l), vec!["let", "x"]);
        assert!(!l.toks.iter().any(|t| t.text == "^="));
    }

    #[test]
    fn multi_line_string_with_continuation_stays_a_literal() {
        // The PR 2 scanner reset string state per line and flagged the
        // second line's contents; the lexer must not.
        let l = lex("let s = \"a\\nb\\\n from_entropy()\";\nlet y = 1;");
        assert_eq!(idents(&l), vec!["let", "s", "let", "y"]);
        // The continued literal occupies source lines 1–2, so the trailing
        // statement sits on line 3.
        assert_eq!(l.toks.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex("let s = r#\"unsafe \" still\"#; let t = r\"^=\";");
        assert_eq!(idents(&l), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_and_char_literals_vs_lifetimes() {
        let l = lex("fn f<'a>(x: &'a [u8]) -> char { b'\\'' ; 'x' }");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        let lits = l.toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 2, "byte char + char literal");
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let l = lex("a /* x /* y */ z\nstill ^= comment */ b\nc");
        assert_eq!(idents(&l), vec!["a", "b", "c"]);
        assert!(!l.toks.iter().any(|t| t.text == "^="));
        let c_tok = l.toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c_tok.line, 3);
        // Comment text is retained for marker lookup, per line.
        assert!(l.comments.iter().any(|c| c.text.contains("still")));
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let l = lex("a += b; c ^= d; e :: f; g..=h;");
        let puncts: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"^="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let l = lex("for i in 0..10 { 1.min(2); 2.5f64; }");
        assert!(l.toks.iter().any(|t| t.text == ".."));
        assert!(l.toks.iter().any(|t| t.text == "min"));
    }

    #[test]
    fn comments_keep_marker_text() {
        let l = lex("unsafe { f() } // SAFETY: bounded\nx ^= y; // raw-xor-ok: test\n");
        assert!(l.comments.iter().any(|c| c.line == 1 && c.text.contains("SAFETY:")));
        assert!(l.comments.iter().any(|c| c.line == 2 && c.text.contains("raw-xor-ok:")));
    }
}
