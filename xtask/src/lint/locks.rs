//! Static lock-order and blocking-under-lock analysis.
//!
//! The workspace's concurrency story spans three layers — `crates/store`'s
//! sharded object lock table under a topology `RwLock`, `crates/maint`'s
//! repair queue and sharded cache, and `crates/serve`'s worker pool — and
//! a deadlock between them would hang the daemon, not crash it, so no
//! panic policy catches the bug class. This pass makes deadlock-freedom a
//! reachability policy like panic-freedom already is:
//!
//! 1. **Lock classes.** Every acquisition site — direct argless
//!    `.lock()`/`.read()`/`.write()`, the store's guard wrappers
//!    (`read_guard`/`write_guard`), the lock-table accessors
//!    (`read_lock`/`write_lock`/`write_pair`), maint's poison-absorbing
//!    `lock()` helper, serve's `guard()`/`slot_guard()` — is mapped to a
//!    typed class from [`LOCK_CLASSES`] by file prefix plus the receiver /
//!    argument idents. Unknown locks get an automatic `<crate>.<ident>`
//!    class so nothing escapes the graph. Classes may declare a **rank**
//!    (the global acquisition order, lower first) and an **io_ok**
//!    justification when holding the lock across I/O is the design.
//!
//! 2. **Guard lifetimes.** A `let g = <acquire>` guard lives to the end of
//!    its enclosing block, truncated at an early `drop(g)`; a temporary
//!    guard lives to the end of its statement, extended through the block
//!    (and any `else` continuation) when the statement is an
//!    `if let`/`while let`/`match` head — the exact shape that held serve's
//!    connection-slot lock across `shutdown()`.
//!
//! 3. **Held-set propagation.** Call-graph edges carry the token index of
//!    the call site, so the held-lock set at each call is known and is
//!    propagated along the PR 7 call graph (every non-test fn is a seed;
//!    the serving/maintenance roots in [`LOCK_ROOTS`] are the review
//!    anchor). Acquiring class B while holding class A adds the order edge
//!    A→B; cycles, declared-rank inversions, and same-class re-acquisition
//!    become `transitive-lock-order` findings, and blocking I/O under a
//!    non-`io_ok` guard becomes `transitive-lock-io` — each carrying the
//!    full root→acquire→acquire trace in the PR 7 format.
//!
//! Waivers use `// lock-ok: <invariant>` on the flagged line (or the line
//! above) and are ratcheted against `xtask/lock_baseline.json`, the third
//! committed baseline. Every waived cross-lock site must be backed by a
//! loom model (see `crates/store/src/lock_table.rs`).

use super::callgraph::CallGraph;
use super::lexer::{Lexed, Tok, TokKind};
use super::report::Finding;
use super::rules::marker;
use super::scopes::Scopes;
use super::symbols::{FnSym, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Serving/maintenance roots the lock policy is anchored on: the same
/// entry points as the transitive panic policy's daemon/maintenance
/// subset. Propagation seeds *every* non-test fn (so helpers like the
/// lock table's `write_pair` are analyzed even when a root does not reach
/// them), but these names are asserted reachable-and-analyzed in tests
/// and documented as the paths the policy exists to protect.
pub const LOCK_ROOTS: &[&str] = &[
    "handle_request",
    "serve_get",
    "serve_degraded_get",
    "read_object",
    "repair_object",
    "scrub_tick",
    "drain_repairs",
    "run_scrub",
];

/// One declared lock class.
pub struct LockClassSpec {
    /// Stable class name used in diagnostics and `--stats`.
    pub name: &'static str,
    /// File prefix the class's acquisition sites live under.
    pub prefix: &'static str,
    /// Receiver/argument idents that identify the lock. Empty = any
    /// acquisition under `prefix` (only safe for single-lock files).
    pub idents: &'static [&'static str],
    /// Position in the global acquisition order (lower first). `None`
    /// marks a leaf lock never held across another acquisition.
    pub rank: Option<u32>,
    /// One-line justification when holding this lock across blocking I/O
    /// is the documented design; `None` bans I/O under the guard.
    pub io_ok: Option<&'static str>,
}

/// The declarative lock-order table. Ranks define the one legal global
/// acquisition order; every `io_ok` entry names the invariant that makes
/// I/O under that guard deliberate rather than an oversight.
pub const LOCK_CLASSES: &[LockClassSpec] = &[
    LockClassSpec {
        name: "cli.session",
        prefix: "crates/cli/",
        idents: &["session"],
        rank: Some(10),
        io_ok: Some("the vault serializes whole CLI operations through one store session"),
    },
    LockClassSpec {
        name: "serve.conn-queue",
        prefix: "crates/serve/",
        idents: &["inner"],
        rank: Some(20),
        io_ok: None,
    },
    LockClassSpec {
        name: "serve.conn-slot",
        prefix: "crates/serve/",
        idents: &["slot", "slots"],
        rank: Some(21),
        io_ok: None,
    },
    LockClassSpec {
        name: "store.topo",
        prefix: "crates/store/",
        idents: &["topo"],
        rank: Some(30),
        io_ok: Some("the topology lock *is* the store's reader/repairer barrier over on-disk shards"),
    },
    LockClassSpec {
        name: "store.object",
        prefix: "crates/store/",
        idents: &["locks", "shards", "cell", "cells"],
        rank: Some(40),
        io_ok: Some("per-object locks serialize shard/meta file access by design (store locking matrix)"),
    },
    LockClassSpec {
        name: "maint.cache-shard",
        prefix: "crates/maint/src/cache.rs",
        idents: &[],
        rank: Some(50),
        io_ok: None,
    },
    LockClassSpec {
        name: "maint.status",
        prefix: "crates/maint/src/status.rs",
        idents: &[],
        rank: Some(51),
        io_ok: None,
    },
    LockClassSpec {
        name: "xor.plan-cache",
        prefix: "crates/xor/",
        idents: &["plan_cache"],
        rank: Some(70),
        io_ok: None,
    },
    LockClassSpec {
        name: "core.plan-cache",
        prefix: "crates/core/",
        idents: &["cache"],
        rank: Some(71),
        io_ok: None,
    },
    LockClassSpec {
        name: "rs.decode-cache",
        prefix: "crates/rs/",
        idents: &["decode_cache"],
        rank: Some(72),
        io_ok: None,
    },
    // Leaf instrumentation locks: never held across another acquisition,
    // so they carry no rank — an edge out of one is a cycle-or-nothing.
    LockClassSpec {
        name: "ec.iostats",
        prefix: "crates/ec/",
        idents: &["nodes"],
        rank: None,
        io_ok: None,
    },
    LockClassSpec {
        name: "ec.parallel-cells",
        prefix: "crates/ec/",
        idents: &["cells", "error", "results"],
        rank: None,
        io_ok: None,
    },
    LockClassSpec {
        name: "ec.claim-hits",
        prefix: "crates/ec/",
        idents: &["hits"],
        rank: None,
        io_ok: None,
    },
];

/// Free functions whose *call* is a lock acquisition (guard-returning
/// wrappers). Their own bodies are skipped — the caller's call site is
/// the acquisition, not the wrapper's interior `.lock()`.
const WRAPPER_FREE_FNS: &[&str] = &["read_guard", "write_guard", "mutex_guard", "lock", "slot_guard"];

/// Methods whose call is a lock acquisition, with the file prefix that
/// activates the mapping and the class it resolves to. Outside the
/// prefix the name falls through to auto-classing.
const WRAPPER_METHODS: &[(&str, &str, &str)] = &[
    ("guard", "crates/serve/", "serve.conn-queue"),
    ("session", "crates/cli/", "cli.session"),
    ("read_lock", "crates/store/", "store.object"),
    ("write_lock", "crates/store/", "store.object"),
    ("write_pair", "crates/store/", "store.object"),
];

/// Fns whose bodies are *not* scanned for acquisitions: single-guard
/// wrappers where the caller-side call site already models the lock.
/// `write_pair` is deliberately absent — its interior double acquisition
/// is exactly the cross-lock site the policy must see (and waive against
/// the loom model).
const WRAPPER_DEF_NAMES: &[&str] = &[
    "read_guard",
    "write_guard",
    "mutex_guard",
    "lock",
    "slot_guard",
    "guard",
    "session",
    "read_lock",
    "write_lock",
];

/// Blocking method names (called as `.name(...)`): file/socket I/O and
/// frame transport. Condvar `wait`/`wait_timeout` are deliberately not
/// here — parking a guard on its own condvar is the one sanctioned way
/// to block while holding it.
const BLOCKING_METHODS: &[&str] = &[
    "sync_all",
    "sync_data",
    "flush",
    "read_exact",
    "read_to_end",
    "write_all",
    "accept",
    "connect",
    "shutdown",
    "try_clone",
    "read_frame",
    "write_frame",
];

/// Blocking free/path calls, keyed by the `::` qualifier immediately
/// before the name (e.g. `fs::write`, `thread::sleep`).
const BLOCKING_PATHS: &[(&str, &[&str])] = &[
    (
        "fs",
        &[
            "read",
            "write",
            "open",
            "create",
            "copy",
            "rename",
            "metadata",
            "read_dir",
            "read_to_string",
            "remove_file",
            "remove_dir_all",
            "create_dir_all",
        ],
    ),
    ("File", &["open", "create", "options"]),
    ("TcpStream", &["connect"]),
    ("TcpListener", &["bind"]),
    ("thread", &["sleep"]),
];

/// Frame-transport helpers also callable as free fns.
const BLOCKING_FREE: &[&str] = &["read_frame", "write_frame"];

/// Acquisition methods recognized in direct argless form.
const DIRECT_ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Machine-readable coverage counters for `--stats`.
#[derive(Debug, Default, Clone, Copy)]
pub struct LockStats {
    /// Distinct lock classes with at least one acquisition site.
    pub classes: usize,
    /// Total acquisition sites modeled.
    pub acquisition_sites: usize,
    /// Distinct edges in the lock-order graph.
    pub order_edges: usize,
}

/// One modeled acquisition: class + guard-live token extent.
struct Acq {
    class: usize,
    line: u32,
    tok: usize,
    /// Guard live over tokens in `(tok, end)`.
    end: usize,
}

/// One blocking operation site.
struct Blk {
    line: u32,
    tok: usize,
    what: String,
}

#[derive(Default)]
struct FnLocks {
    acqs: Vec<Acq>,
    blks: Vec<Blk>,
}

/// Interns class names; ids index a bitmask (capped at 64 classes —
/// far above the table plus plausible auto-classes; overflow classes are
/// tracked but not propagated).
#[derive(Default)]
struct ClassTable {
    names: Vec<String>,
    ids: HashMap<String, usize>,
    ranks: Vec<Option<u32>>,
    io_ok: Vec<bool>,
}

impl ClassTable {
    fn intern(&mut self, name: &str, rank: Option<u32>, io_ok: bool) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        self.ranks.push(rank);
        self.io_ok.push(io_ok);
        id
    }
}

/// `crates/rs/src/lib.rs` → `rs::lib` (same qualifier as the transitive
/// pass, so lock traces and panic traces read identically).
fn qualify(file: &str) -> String {
    let mut s = file;
    s = s.strip_prefix("crates/").unwrap_or(s);
    s = s.strip_suffix(".rs").unwrap_or(s);
    let parts: Vec<&str> = s.split('/').filter(|p| *p != "src").collect();
    parts.join("::")
}

fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("ws")
}

/// Maps an acquisition site to its class name via the declarative table,
/// falling back to an automatic `<crate>.<ident>` class so unknown locks
/// still participate in the graph (unranked, I/O banned).
fn resolve_class(rel: &str, hints: &[&str]) -> (String, Option<u32>, bool) {
    for spec in LOCK_CLASSES {
        if rel.starts_with(spec.prefix)
            && (spec.idents.is_empty() || hints.iter().any(|h| spec.idents.contains(h)))
        {
            return (spec.name.to_string(), spec.rank, spec.io_ok.is_some());
        }
    }
    let ident = hints
        .iter()
        .find(|h| **h != "self")
        .copied()
        .unwrap_or("anon");
    (format!("{}.{}", crate_of(rel), ident), None, false)
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Idents naming the receiver chain before token `end` (exclusive),
/// walking back through `.`/`::` chains and bracketed groups:
/// `self.shards[i]` before `.write` yields `["shards", "self"]`.
fn receiver_hints<'a>(toks: &'a [Tok], openers: &HashMap<usize, usize>, end: usize) -> Vec<&'a str> {
    let mut hints = Vec::new();
    let mut k = end;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        let t = &toks[k];
        if t.kind == TokKind::Punct && (t.text == ")" || t.text == "]") {
            match openers.get(&k) {
                Some(&open) if open > 0 => {
                    // Keep idents inside an index expression as hints too:
                    // `shards[lo]` — `shards` arrives via the next step.
                    k = open;
                    continue;
                }
                _ => break,
            }
        }
        if t.kind == TokKind::Ident {
            hints.push(t.text.as_str());
            if k > 0 && (is_punct(&toks[k - 1], ".") || is_punct(&toks[k - 1], "::")) {
                k -= 1;
                continue;
            }
        }
        break;
    }
    hints
}

/// Idents inside the argument list opening at `open` (a `(` token):
/// `read_guard(&self.topo)` yields `["self", "topo"]`.
fn arg_hints<'a>(toks: &'a [Tok], scopes: &Scopes, open: usize) -> Vec<&'a str> {
    let Some(close) = scopes.matching(open) else {
        return Vec::new();
    };
    toks[open + 1..close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

/// Whether the statement containing token `i` is a `let <name> = …`
/// binding; returns the bound name. Walks back to the nearest statement
/// boundary (`;`/`{`/`}`) — close enough for guard bindings, which are
/// simple by convention.
fn let_binding<'a>(toks: &'a [Tok], open: usize, i: usize) -> Option<&'a str> {
    let mut k = i;
    while k > open {
        k -= 1;
        let t = &toks[k];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
    }
    let s = k + 1;
    if !(toks.get(s)?.kind == TokKind::Ident && toks[s].text == "let") {
        return None;
    }
    let mut p = s + 1;
    if toks.get(p).is_some_and(|t| t.text == "mut") {
        p += 1;
    }
    let name = toks.get(p)?;
    if name.kind != TokKind::Ident || !is_punct(toks.get(p + 1)?, "=") {
        return None;
    }
    // `let _ = guard` drops at the end of the statement — temporary
    // semantics, not a scope-long binding.
    if name.text == "_" {
        return None;
    }
    Some(name.text.as_str())
}

/// Whether the acquisition call closing at `close` is immediately
/// consumed by a chained method: `slot_guard(slot).take()` moves the
/// inner value out and the guard itself dies at the end of the
/// statement, so a `let` on such a statement binds the chain's
/// *result*, not the guard. `unwrap`/`expect` are the exception — they
/// peel the `LockResult` and hand the guard back, so the chain is
/// skipped and the binding still names the guard.
fn chained_past_guard(toks: &[Tok], scopes: &Scopes, mut close: usize) -> bool {
    loop {
        if !toks.get(close + 1).is_some_and(|t| is_punct(t, ".")) {
            return false;
        }
        let Some(m) = toks.get(close + 2) else {
            return false;
        };
        if m.kind != TokKind::Ident {
            return false;
        }
        if matches!(m.text.as_str(), "unwrap" | "expect") {
            match toks
                .get(close + 3)
                .filter(|t| is_punct(t, "("))
                .and_then(|_| scopes.matching(close + 3))
            {
                Some(c) => {
                    close = c;
                    continue;
                }
                None => return false,
            }
        }
        return true;
    }
}

/// End of a temporary guard's extent starting after token `i`: the next
/// `;` at this nesting level, extended through `{…}` blocks (and `else`
/// continuations) hit first — an `if let`/`match` head keeps its
/// scrutinee temporary alive through the body.
fn temporary_extent(toks: &[Tok], scopes: &Scopes, i: usize, body_close: usize) -> usize {
    let mut j = i + 1;
    while j < body_close {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => {
                    match scopes.matching(j) {
                        Some(c) => {
                            j = c + 1;
                            continue;
                        }
                        None => return body_close,
                    }
                }
                ";" => return j,
                "{" => {
                    let mut end = match scopes.matching(j) {
                        Some(c) => c + 1,
                        None => return body_close,
                    };
                    // `if let Some(g) = x.lock()… {…} else {…}` — the
                    // temporary lives through the else arm too.
                    while toks.get(end).is_some_and(|t| t.text == "else") {
                        let mut k = end + 1;
                        while k < body_close && !is_punct(&toks[k], "{") {
                            k += 1;
                        }
                        match scopes.matching(k) {
                            Some(c) => end = c + 1,
                            None => return body_close,
                        }
                    }
                    return end.min(body_close);
                }
                "}" => return j,
                _ => {}
            }
        }
        j += 1;
    }
    body_close
}

/// Truncates a guard extent at an early `drop(name)`.
fn truncate_at_drop(toks: &[Tok], name: &str, start: usize, end: usize) -> usize {
    let mut d = start;
    while d + 3 < end {
        if toks[d].kind == TokKind::Ident
            && toks[d].text == "drop"
            && is_punct(&toks[d + 1], "(")
            && toks[d + 2].text == name
            && is_punct(&toks[d + 3], ")")
        {
            return d;
        }
        d += 1;
    }
    end
}

/// Scans one fn body for acquisitions and blocking operations.
fn scan_fn(
    rel: &str,
    lexed: &Lexed,
    scopes: &Scopes,
    f: &FnSym,
    nested_opens: &HashSet<usize>,
    openers: &HashMap<usize, usize>,
    classes: &mut ClassTable,
) -> FnLocks {
    let mut out = FnLocks::default();
    let Some((open, close)) = f.body else {
        return out;
    };
    let skip_acquires = WRAPPER_DEF_NAMES.contains(&f.name.as_str());
    let toks = &lexed.toks;
    // Innermost enclosing block close for scope-long guard extents.
    let mut brace_stack: Vec<usize> = vec![close];
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            if t.text == "{" {
                if nested_opens.contains(&i) {
                    // A nested fn item: its body is scanned as its own
                    // symbol, not as part of this one.
                    i = scopes.matching(i).map_or(i + 1, |c| c + 1);
                    continue;
                }
                if let Some(c) = scopes.matching(i) {
                    brace_stack.push(c);
                }
            } else if t.text == "}" && brace_stack.last() == Some(&i) {
                brace_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let next_is_paren = toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
        let prev_dot = i > 0 && is_punct(&toks[i - 1], ".");
        let prev_path = i > 0 && is_punct(&toks[i - 1], "::");
        let prev_fn = i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn";

        let mut acquired: Option<(String, Option<u32>, bool)> = None;
        if next_is_paren && !skip_acquires && !prev_fn {
            if prev_dot && DIRECT_ACQUIRE.contains(&name) {
                // Argless `.lock()` / `.read()` / `.write()` only.
                let empty = scopes.matching(i + 1) == Some(i + 2);
                if empty {
                    let hints = receiver_hints(toks, openers, i - 1);
                    acquired = Some(resolve_class(rel, &hints));
                }
            } else if prev_dot {
                if let Some((_, _, class)) = WRAPPER_METHODS
                    .iter()
                    .find(|(n, prefix, _)| *n == name && rel.starts_with(prefix))
                {
                    let spec = LOCK_CLASSES.iter().find(|s| s.name == *class);
                    acquired = Some((
                        class.to_string(),
                        spec.and_then(|s| s.rank),
                        spec.is_some_and(|s| s.io_ok.is_some()),
                    ));
                }
            } else if !prev_path && WRAPPER_FREE_FNS.contains(&name) {
                let hints = arg_hints(toks, scopes, i + 1);
                acquired = Some(resolve_class(rel, &hints));
            }
        }
        if let Some((class_name, rank, io_ok)) = acquired {
            let class = classes.intern(&class_name, rank, io_ok);
            let call_close = scopes.matching(i + 1).unwrap_or(i + 1);
            let chained = chained_past_guard(toks, scopes, call_close);
            let end = match let_binding(toks, open, i) {
                Some(guard) if !chained => {
                    let scope_end = *brace_stack.last().unwrap_or(&close);
                    truncate_at_drop(toks, guard, i, scope_end)
                }
                _ => temporary_extent(toks, scopes, i, close),
            };
            out.acqs.push(Acq {
                class,
                line: t.line,
                tok: i,
                end,
            });
            i += 1;
            continue;
        }

        // Blocking operations.
        if next_is_paren && !prev_fn {
            let blocking = if prev_dot {
                BLOCKING_METHODS.contains(&name)
            } else if prev_path {
                i > 1
                    && BLOCKING_PATHS.iter().any(|(qual, names)| {
                        toks[i - 2].text == *qual && names.contains(&name)
                    })
            } else {
                BLOCKING_FREE.contains(&name)
            };
            if blocking {
                let what = if prev_path {
                    format!("{}::{}", toks[i - 2].text, name)
                } else {
                    name.to_string()
                };
                out.blks.push(Blk {
                    line: t.line,
                    tok: i,
                    what,
                });
            }
        }
        i += 1;
    }
    out
}

/// One order edge's representative observation.
struct EdgeObs {
    file: String,
    line: u32,
    /// Where the already-held lock was acquired.
    holder: String,
    /// Root→…→fn call chain (transitive-pass format).
    chain: String,
}

/// One propagation state: a fn analyzed under a set of held classes.
struct State {
    fn_id: usize,
    mask: u64,
    /// `(parent state, call line)` for trace reconstruction.
    parent: Option<(usize, u32)>,
    /// `(class, "file:line")` acquisition sites backing `mask`.
    held_sites: Vec<(usize, String)>,
}

fn chain_of(table: &SymbolTable, states: &[State], mut s: usize) -> String {
    let mut hops: Vec<String> = Vec::new();
    loop {
        let f = &table.fns[states[s].fn_id];
        let label = format!("{}::{}", qualify(&f.file), f.name);
        match states[s].parent {
            Some((parent, line)) => {
                hops.push(format!(
                    "→[{}:{line}] {label}",
                    table.fns[states[parent].fn_id].file
                ));
                s = parent;
            }
            None => {
                hops.push(label);
                break;
            }
        }
    }
    hops.reverse();
    hops.join(" ")
}

/// Pushes the finding for one flagged site, honoring `// lock-ok:`.
#[allow(clippy::too_many_arguments)]
fn push_finding(
    findings: &mut Vec<Finding>,
    comments: &HashMap<&str, &Lexed>,
    file: &str,
    line: u32,
    detail: String,
    trace: &str,
) {
    let rule = "transitive-lock-order";
    let waiver = comments
        .get(file)
        .and_then(|l| marker(&l.comments, line, "lock-ok:"));
    match waiver {
        Some(inv) if !inv.is_empty() => findings.push(Finding::waived(
            file,
            line,
            rule,
            format!("{inv} [trace: {trace}]"),
        )),
        _ => findings.push(Finding::error(
            file,
            line,
            rule,
            format!("{detail}: {trace} — acquire in the declared order or restructure \
                     (or justify with `// lock-ok: <invariant>` + a loom model)"),
        )),
    }
}

/// Runs the lock-order and blocking-under-lock policies, appending
/// findings and returning coverage counters for `--stats`.
pub fn run(
    table: &SymbolTable,
    graph: &CallGraph,
    files: &[(String, Lexed, Scopes)],
    findings: &mut Vec<Finding>,
) -> LockStats {
    let mut classes = ClassTable::default();

    // Per-file precomputation: close→open map and nested fn body starts.
    let mut openers_by_file: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    let mut nested_by_file: HashMap<usize, HashSet<usize>> = HashMap::new();
    for f in &table.fns {
        if let Some((open, _)) = f.body {
            nested_by_file.entry(f.file_idx).or_default().insert(open);
        }
    }
    for f in &table.fns {
        if f.body.is_none() || openers_by_file.contains_key(&f.file_idx) {
            continue;
        }
        let lexed = &files[f.file_idx].1;
        let scopes = &files[f.file_idx].2;
        let mut rev = HashMap::new();
        for i in 0..lexed.toks.len() {
            if let Some(c) = scopes.matching(i) {
                rev.insert(c, i);
            }
        }
        openers_by_file.insert(f.file_idx, rev);
    }

    // Scan every non-test fn body once.
    let empty_openers = HashMap::new();
    let empty_nested = HashSet::new();
    let fn_locks: Vec<FnLocks> = table
        .fns
        .iter()
        .map(|f| {
            if f.in_test || f.body.is_none() {
                return FnLocks::default();
            }
            scan_fn(
                &f.file,
                &files[f.file_idx].1,
                &files[f.file_idx].2,
                f,
                nested_by_file.get(&f.file_idx).unwrap_or(&empty_nested),
                openers_by_file.get(&f.file_idx).unwrap_or(&empty_openers),
                &mut classes,
            )
        })
        .collect();

    let comments: HashMap<&str, &Lexed> = files
        .iter()
        .map(|(rel, lexed, _)| (rel.as_str(), lexed))
        .collect();

    // Held-set propagation: BFS over (fn, held-mask) states. Roots first
    // so serving-path traces anchor on LOCK_ROOTS, then every other fn.
    let mut states: Vec<State> = Vec::new();
    let mut visited: HashSet<(usize, u64)> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let seed = |states: &mut Vec<State>,
                visited: &mut HashSet<(usize, u64)>,
                queue: &mut VecDeque<usize>,
                id: usize| {
        if visited.insert((id, 0)) {
            states.push(State {
                fn_id: id,
                mask: 0,
                parent: None,
                held_sites: Vec::new(),
            });
            queue.push_back(states.len() - 1);
        }
    };
    for (id, f) in table.fns.iter().enumerate() {
        if !f.in_test && LOCK_ROOTS.contains(&f.name.as_str()) {
            seed(&mut states, &mut visited, &mut queue, id);
        }
    }
    for (id, f) in table.fns.iter().enumerate() {
        if !f.in_test && f.body.is_some() {
            seed(&mut states, &mut visited, &mut queue, id);
        }
    }

    let mut edges: BTreeMap<(usize, usize), EdgeObs> = BTreeMap::new();
    let mut io_seen: BTreeSet<(String, u32, usize, String)> = BTreeSet::new();
    let mut io_findings: Vec<(String, u32, String, String)> = Vec::new();

    while let Some(s) = queue.pop_front() {
        let fn_id = states[s].fn_id;
        let mask = states[s].mask;
        let f = &table.fns[fn_id];
        let locks = &fn_locks[fn_id];
        let site = |line: u32| format!("{}:{line}", f.file);

        // Order edges: caller-held classes × own acquisitions, plus own
        // guard nesting.
        for b in &locks.acqs {
            for &(held, ref held_site) in &states[s].held_sites {
                edges.entry((held, b.class)).or_insert_with(|| EdgeObs {
                    file: f.file.clone(),
                    line: b.line,
                    holder: held_site.clone(),
                    chain: chain_of(table, &states, s),
                });
            }
            for a in &locks.acqs {
                if a.tok < b.tok && b.tok < a.end {
                    edges.entry((a.class, b.class)).or_insert_with(|| EdgeObs {
                        file: f.file.clone(),
                        line: b.line,
                        holder: site(a.line),
                        chain: chain_of(table, &states, s),
                    });
                }
            }
        }

        // Blocking ops under held guards.
        for blk in &locks.blks {
            let mut held: Vec<(usize, String)> = states[s].held_sites.clone();
            held.extend(
                locks
                    .acqs
                    .iter()
                    .filter(|a| a.tok < blk.tok && blk.tok < a.end)
                    .map(|a| (a.class, site(a.line))),
            );
            for (class, acq_site) in held {
                if classes.io_ok[class] {
                    continue;
                }
                if !io_seen.insert((f.file.clone(), blk.line, class, blk.what.clone())) {
                    continue;
                }
                let chain = chain_of(table, &states, s);
                io_findings.push((
                    f.file.clone(),
                    blk.line,
                    format!(
                        "blocking `{}` while holding lock class `{}` (acquired at {acq_site})",
                        blk.what, classes.names[class]
                    ),
                    chain,
                ));
            }
        }

        // Propagate held sets along call edges whose site is inside a
        // guard extent (or that already carry caller-held locks).
        for e in &graph.edges[fn_id] {
            let own: Vec<&Acq> = locks
                .acqs
                .iter()
                .filter(|a| a.tok < e.tok && e.tok < a.end && a.class < 64)
                .collect();
            let mut next = mask;
            for a in &own {
                next |= 1 << a.class;
            }
            if next == 0 || !visited.insert((e.callee, next)) {
                continue;
            }
            let mut held_sites = states[s].held_sites.clone();
            for a in own {
                if !held_sites.iter().any(|(c, _)| *c == a.class) {
                    held_sites.push((a.class, site(a.line)));
                }
            }
            states.push(State {
                fn_id: e.callee,
                mask: next,
                parent: Some((s, e.line)),
                held_sites,
            });
            queue.push_back(states.len() - 1);
        }
    }

    let stats = LockStats {
        classes: classes.names.len(),
        acquisition_sites: fn_locks.iter().map(|l| l.acqs.len()).sum(),
        order_edges: edges.len(),
    };

    // Strongly-connected components over the order graph (iterative
    // Tarjan) — an edge inside a non-trivial SCC is part of a cycle.
    let n = classes.names.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        if a != b {
            adj[a].push(b);
        }
    }
    let scc = tarjan_scc(&adj);
    let mut scc_size = vec![0usize; n];
    for &comp in &scc {
        scc_size[comp] += 1;
    }

    for ((a, b), obs) in &edges {
        let (a, b) = (*a, *b);
        let name_a = &classes.names[a];
        let name_b = &classes.names[b];
        if a == b {
            push_finding(
                findings,
                &comments,
                &obs.file,
                obs.line,
                format!(
                    "lock class `{name_a}` re-acquired while already held \
                     (first acquired at {})",
                    obs.holder
                ),
                &obs.chain,
            );
        } else if scc[a] == scc[b] && scc_size[scc[a]] > 1 {
            push_finding(
                findings,
                &comments,
                &obs.file,
                obs.line,
                format!(
                    "lock-order cycle: `{name_b}` acquired while holding `{name_a}` \
                     (acquired at {}), and another path acquires them in the \
                     opposite order — this can deadlock",
                    obs.holder
                ),
                &obs.chain,
            );
        } else if let (Some(ra), Some(rb)) = (classes.ranks[a], classes.ranks[b]) {
            if rb < ra {
                push_finding(
                    findings,
                    &comments,
                    &obs.file,
                    obs.line,
                    format!(
                        "rank inversion: `{name_b}` (rank {rb}) acquired while \
                         holding `{name_a}` (rank {ra}, acquired at {}) — the \
                         declared order requires `{name_b}` first",
                        obs.holder
                    ),
                    &obs.chain,
                );
            }
        }
    }

    for (file, line, detail, chain) in io_findings {
        let rule = "transitive-lock-io";
        let waiver = comments
            .get(file.as_str())
            .and_then(|l| marker(&l.comments, line, "lock-ok:"));
        match waiver {
            Some(inv) if !inv.is_empty() => findings.push(Finding::waived(
                &file,
                line,
                rule,
                format!("{inv} [trace: {chain}]"),
            )),
            _ => findings.push(Finding::error(
                &file,
                line,
                rule,
                format!(
                    "{detail}: {chain} — drop the guard before blocking \
                     (or justify with `// lock-ok: <invariant>`)"
                ),
            )),
        }
    }

    stats
}

/// Iterative Tarjan SCC: returns each node's component id.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit DFS frames: (node, edge cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&(v, cursor)) = frames.last() {
            if cursor < adj[v].len() {
                let w = adj[v][cursor];
                frames.last_mut().expect("frame just read").1 = cursor + 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::callgraph::build;
    use crate::lint::lexer::lex;
    use crate::lint::scopes::analyze;

    fn run_at(rel: &str, src: &str) -> (Vec<Finding>, LockStats) {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let mut t = SymbolTable::default();
        t.add_file(rel, 0, &lexed, &scopes);
        let files = vec![(rel.to_string(), lexed, scopes)];
        let g = build(&t, &files);
        let mut f = Vec::new();
        let stats = run(&t, &g, &files, &mut f);
        (f, stats)
    }

    fn run_on(src: &str) -> (Vec<Finding>, LockStats) {
        run_at("crates/x/src/lib.rs", src)
    }

    fn errors(f: &[Finding]) -> Vec<&Finding> {
        f.iter().filter(|x| !x.waived).collect()
    }

    #[test]
    fn opposite_order_across_fns_is_a_cycle() {
        let src = "fn read_object(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n\
                   fn scrub_tick(a: &M, b: &M) { let g = b.lock(); let h = a.lock(); }\n";
        let (f, stats) = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 2, "{f:?}");
        assert!(e.iter().all(|x| x.rule == "transitive-lock-order"));
        assert!(e[0].detail.contains("cycle"), "{}", e[0].detail);
        assert_eq!(stats.order_edges, 2);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.acquisition_sites, 4);
    }

    #[test]
    fn consistent_order_is_silent() {
        let src = "fn read_object(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n\
                   fn scrub_tick(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); }\n";
        let (f, _) = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn early_drop_releases_the_guard() {
        let src = "fn read_object(a: &M, b: &M) { let g = a.lock(); drop(g); let h = b.lock(); }\n\
                   fn scrub_tick(a: &M, b: &M) { let g = b.lock(); drop(g); let h = a.lock(); }\n";
        let (f, stats) = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
        assert_eq!(stats.order_edges, 0);
    }

    #[test]
    fn same_class_reacquisition_is_flagged() {
        let src = "fn read_object(a: &M) { let g = a.lock(); let h = a.lock(); }\n";
        let (f, _) = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert!(e[0].detail.contains("re-acquired"), "{}", e[0].detail);
    }

    #[test]
    fn io_under_guard_is_flagged_with_site() {
        let src = "fn read_object(a: &M, f: &mut F) {\n    let g = a.lock();\n    f.sync_all();\n}\n";
        let (f, _) = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "transitive-lock-io");
        assert_eq!(e[0].line, 3);
        assert!(e[0].detail.contains("sync_all"), "{}", e[0].detail);
        assert!(e[0].detail.contains("x.a"), "{}", e[0].detail);
    }

    #[test]
    fn io_after_scope_end_is_silent() {
        let src = "fn read_object(a: &M, f: &mut F) {\n    { let g = a.lock(); }\n    f.sync_all();\n}\n";
        let (f, _) = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn held_set_propagates_with_root_trace() {
        let src = "fn read_object(a: &M) { let g = a.lock(); helper(); }\n\
                   fn helper(f: &mut F) { f.sync_all(); }\n";
        let (f, _) = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "transitive-lock-io");
        assert_eq!(e[0].line, 2);
        assert!(
            e[0].detail
                .contains("x::lib::read_object →[crates/x/src/lib.rs:1] x::lib::helper"),
            "{}",
            e[0].detail
        );
    }

    #[test]
    fn lock_ok_waives_and_keeps_the_trace() {
        let src = "fn read_object(a: &M, f: &mut F) {\n    let g = a.lock();\n    \
                   f.sync_all(); // lock-ok: single writer by construction\n}\n";
        let (f, _) = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
        let w: Vec<_> = f.iter().filter(|x| x.waived).collect();
        assert_eq!(w.len(), 1, "{f:?}");
        assert!(w[0].detail.contains("single writer"), "{}", w[0].detail);
        assert!(w[0].detail.contains("trace:"), "{}", w[0].detail);
    }

    #[test]
    fn if_let_head_temporary_extends_through_body() {
        let src = "fn read_object(a: &M, f: &mut F) {\n    \
                   if let Some(v) = a.lock().get(0) { f.sync_all(); }\n}\n";
        let (f, _) = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "transitive-lock-io");
    }

    #[test]
    fn statement_temporary_does_not_leak_past_semicolon() {
        let src = "fn read_object(a: &M, f: &mut F) {\n    a.lock().push(1);\n    f.sync_all();\n}\n";
        let (f, _) = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn chained_acquisition_binds_the_result_not_the_guard() {
        // `.take()` consumes the guard inside the statement; `conn`
        // holds the moved-out value, so blocking on it afterwards is
        // guard-free.
        let src = "fn read_object(a: &M, f: &mut F) {\n    \
                   let conn = a.lock().take();\n    f.sync_all();\n}\n";
        let (f, _) = run_on(src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_chain_still_binds_the_guard() {
        // `.unwrap()` peels the LockResult and returns the guard — the
        // std idiom must keep its scope-long extent.
        let src = "fn read_object(a: &M, f: &mut F) {\n    \
                   let g = a.lock().unwrap();\n    f.sync_all();\n}\n";
        let (f, _) = run_on(src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert_eq!(e[0].rule, "transitive-lock-io");
    }

    #[test]
    fn rank_inversion_uses_declared_classes() {
        // store.object (rank 40) held while store.topo (rank 30) is
        // acquired: backwards against the declared order.
        let src = "fn read_object(s: &S, id: &str) {\n    \
                   let o = s.locks.write_lock(id);\n    let t = s.topo.read();\n}\n";
        let (f, _) = run_at("crates/store/src/store.rs", src);
        let e = errors(&f);
        assert_eq!(e.len(), 1, "{f:?}");
        assert!(e[0].detail.contains("rank inversion"), "{}", e[0].detail);
        assert!(e[0].detail.contains("store.topo"), "{}", e[0].detail);
    }

    #[test]
    fn declared_order_topo_then_object_is_silent() {
        let src = "fn read_object(s: &S, id: &str) {\n    \
                   let t = s.topo.read();\n    let o = s.locks.read_lock(id);\n}\n";
        let (f, _) = run_at("crates/store/src/store.rs", src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn io_ok_class_permits_io_under_guard() {
        // store.topo declares an io_ok justification: fs I/O under it is
        // the documented design, not a finding.
        let src = "fn read_object(s: &S, p: &P) {\n    let t = s.topo.read();\n    \
                   let b = fs::read(p);\n}\n";
        let (f, _) = run_at("crates/store/src/store.rs", src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn wrapper_fn_interiors_are_not_double_counted() {
        let src = "fn read_guard(l: &L) -> G { l.read().unwrap_or_else(|p| p.into_inner()) }\n\
                   fn read_object(s: &S) { let t = read_guard(&s.topo); }\n";
        let (_, stats) = run_at("crates/store/src/store.rs", src);
        assert_eq!(stats.acquisition_sites, 1, "wrapper interior must not count");
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let src = "fn read_object(q: &Q) {\n    let mut st = q.inner.lock();\n    \
                   st = q.ready.wait(st);\n}\n";
        let (f, _) = run_at("crates/serve/src/server.rs", src);
        assert!(errors(&f).is_empty(), "{f:?}");
    }
}
