//! Workspace symbol table: every `fn` item, its enclosing `impl` / `trait`
//! context, and the trait-method surface — extracted from the lexer's
//! token stream, no `syn`.
//!
//! This is the third layer of the analysis stack (lexer → scopes →
//! **symbols** → call graph → policies). It does not try to be a name
//! resolver: the call graph built on top resolves calls *by name*,
//! conservatively (a method call edges to every impl of that method
//! name). What this layer contributes is the inventory those lookups
//! need — which functions exist, which are inherent or trait methods,
//! which trait methods carry default bodies, and the exact token extent
//! of every body so call-site scans never leak across items.
//!
//! Parsing notes (the subset of Rust the workspace uses):
//! * `impl` headers are read up to the body `{`, tracking `<…>` depth by
//!   hand (the lexer pre-joins `>>`, which closes two angle groups — a
//!   `Foo<Bar<T>>` header ends in one token). `impl Trait for Type`
//!   yields both names; `impl Type` yields an inherent context.
//! * A `fn` item's body is found by walking its signature, jumping over
//!   matched `(`/`[` groups and `<…>` runs; a `;` first means a
//!   declaration (trait method without default, or an extern decl).
//! * Nested `fn` items are recorded as their own symbols and their token
//!   ranges are excluded from the enclosing body's call scan.

use super::lexer::{Lexed, TokKind};
use super::scopes::Scopes;
use std::collections::BTreeMap;

/// What owns a function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// Free function at module level (or nested inside another fn).
    Free,
    /// Method inside an `impl` block.
    Impl {
        /// The `Self` type's head identifier (`RsCode` in `impl ErasureCode
        /// for RsCode`).
        type_name: String,
        /// The implemented trait's head identifier, if a trait impl.
        trait_name: Option<String>,
    },
    /// Method declared inside a `trait` definition body. With a body it
    /// is a default method; without, a pure declaration.
    Trait {
        /// The declaring trait's name.
        trait_name: String,
    },
}

/// One `fn` item anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The bare function name.
    pub name: String,
    /// Workspace-relative file path (`/`-normalised).
    pub file: String,
    /// Index of the file in the analysis set (token ranges refer to that
    /// file's stream).
    pub file_idx: usize,
    /// 1-based line of the `fn` keyword. Read by the fixture harness
    /// (`xtask/tests/callgraph_fixtures.rs`), which includes this module
    /// tree as its own crate via `#[path]`.
    #[allow(dead_code)]
    pub line: u32,
    /// Token-index extent of the body: `(open_brace, close_brace)`.
    /// `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Enclosing impl/trait context.
    pub owner: Owner,
    /// Declared under a `#[cfg(test)]`-style mask.
    pub in_test: bool,
}

impl FnSym {
    /// `true` when this is a method (inherent, trait impl, or trait
    /// default) rather than a free function. Used by the fixture harness
    /// crate (`#[path]` include), not by the xtask binary itself.
    #[allow(dead_code)]
    pub fn is_method(&self) -> bool {
        !matches!(self.owner, Owner::Free)
    }
}

/// The workspace-wide symbol table plus lookup maps for call resolution.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function item, in file/source order. Indices into this vec
    /// are the node ids of the call graph.
    pub fns: Vec<FnSym>,
    /// name → fn indices (all owners).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Free fns only: name → indices.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods (impl + trait-default decls with bodies count; bodyless
    /// trait decls included too): name → indices.
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// (type_name, method name) → indices, for `Type::method(..)` calls.
    pub by_type_method: BTreeMap<(String, String), Vec<usize>>,
    /// trait name → method names declared in its body (for trait-path
    /// call resolution `Trait::method(..)`).
    pub trait_methods: BTreeMap<String, Vec<String>>,
}

impl SymbolTable {
    /// Adds one file's symbols. `file_idx` must match the caller's file
    /// ordering so the call graph can find the right token stream.
    pub fn add_file(&mut self, rel: &str, file_idx: usize, lexed: &Lexed, scopes: &Scopes) {
        if scopes.unbalanced {
            return; // rules already reported a parse finding for the file
        }
        let start = self.fns.len();
        extract_fns(rel, file_idx, lexed, scopes, &mut self.fns);
        for idx in start..self.fns.len() {
            let f = &self.fns[idx];
            self.by_name.entry(f.name.clone()).or_default().push(idx);
            match &f.owner {
                Owner::Free => self.free_by_name.entry(f.name.clone()).or_default().push(idx),
                Owner::Impl { type_name, .. } => {
                    self.methods_by_name.entry(f.name.clone()).or_default().push(idx);
                    self.by_type_method
                        .entry((type_name.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                }
                Owner::Trait { trait_name } => {
                    self.methods_by_name.entry(f.name.clone()).or_default().push(idx);
                    self.by_type_method
                        .entry((trait_name.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                    self.trait_methods
                        .entry(trait_name.clone())
                        .or_default()
                        .push(f.name.clone());
                }
            }
        }
    }
}

/// An `impl`/`trait` container discovered in a file, with its body extent.
struct Container {
    body: (usize, usize),
    owner: Owner,
}

/// Walks one token stream, appending every `fn` item to `out`.
fn extract_fns(rel: &str, file_idx: usize, lexed: &Lexed, scopes: &Scopes, out: &mut Vec<FnSym>) {
    let toks = &lexed.toks;
    let n = toks.len();

    // Pass 1: impl/trait containers.
    let mut containers: Vec<Container> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.kind == TokKind::Ident && (t.text == "impl" || t.text == "trait") {
            // `impl` also appears in `-> impl Trait` / `dyn impl` positions;
            // a real item is followed (eventually) by a body `{` before any
            // `;`, and `-> impl Trait` never is at statement level. We parse
            // the header; failure to find a body just skips it.
            if let Some(c) = parse_container(toks, scopes, i, t.text == "trait") {
                let skip_to = c.body.0;
                containers.push(c);
                i = skip_to + 1;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: fn items.
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        let is_fn = t.kind == TokKind::Ident && t.text == "fn";
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let body = find_body(toks, scopes, i + 2);
        let owner = containers
            .iter()
            .filter(|c| c.body.0 < i && i < c.body.1)
            .max_by_key(|c| c.body.0) // innermost container wins
            .map(|c| c.owner.clone())
            .unwrap_or(Owner::Free);
        out.push(FnSym {
            name: name_tok.text.clone(),
            file: rel.to_string(),
            file_idx,
            line: t.line,
            body,
            owner,
            in_test: scopes.in_test(i),
        });
        i += 2;
    }
}

/// Parses an `impl`/`trait` header starting at token `i` (the keyword),
/// returning the container with its body extent, or `None` when no body
/// exists (e.g. `-> impl Trait` in a return type, or a malformed header).
fn parse_container(
    toks: &[super::lexer::Tok],
    scopes: &Scopes,
    i: usize,
    is_trait: bool,
) -> Option<Container> {
    let n = toks.len();
    let mut angle: i32 = 0;
    let mut idents_before_for: Vec<String> = Vec::new();
    let mut idents_after_for: Vec<String> = Vec::new();
    let mut seen_for = false;
    let mut seen_where = false;
    let mut j = i + 1;
    while j < n {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "{" if angle <= 0 => {
                    let close = scopes.matching(j)?;
                    let owner = if is_trait {
                        Owner::Trait {
                            trait_name: idents_before_for.first()?.clone(),
                        }
                    } else if seen_for {
                        // Paths keep their last segment: `impl ec::Code for
                        // cluster::Store` → trait `Code`, type `Store`.
                        Owner::Impl {
                            type_name: idents_after_for.last()?.clone(),
                            trait_name: idents_before_for.last().cloned(),
                        }
                    } else {
                        Owner::Impl {
                            type_name: idents_before_for.last()?.clone(),
                            trait_name: None,
                        }
                    };
                    return Some(Container {
                        body: (j, close),
                        owner,
                    });
                }
                ";" if angle <= 0 => return None, // `impl Trait for Type;`-less decl / stray
                "(" | "[" => {
                    j = scopes.matching(j)? + 1;
                    continue;
                }
                _ => {}
            },
            TokKind::Ident if angle <= 0 && !seen_where => match t.text.as_str() {
                "for" => seen_for = true,
                "where" => seen_where = true,
                // `dyn`/`unsafe`/`const` etc. are structure, not names.
                "dyn" | "unsafe" | "const" | "async" | "pub" | "mut" => {}
                name => {
                    if seen_for {
                        idents_after_for.push(name.to_string());
                    } else {
                        idents_before_for.push(name.to_string());
                    }
                }
            },
            _ => {}
        }
        j += 1;
    }
    None
}

/// From the token after an fn's name, finds the body `{ … }` extent:
/// skips matched `(`/`[` groups and `<…>` runs; `;` first ⇒ no body.
fn find_body(
    toks: &[super::lexer::Tok],
    scopes: &Scopes,
    mut j: usize,
) -> Option<(usize, usize)> {
    let n = toks.len();
    let mut angle: i32 = 0;
    while j < n {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "->" => {}
                "{" if angle <= 0 => {
                    let close = scopes.matching(j)?;
                    return Some((j, close));
                }
                ";" if angle <= 0 => return None,
                "(" | "[" => {
                    j = scopes.matching(j)? + 1;
                    continue;
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lexer::lex;
    use crate::lint::scopes::analyze;

    fn table(src: &str) -> SymbolTable {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let mut t = SymbolTable::default();
        t.add_file("crates/x/src/lib.rs", 0, &lexed, &scopes);
        t
    }

    #[test]
    fn free_fns_and_bodies() {
        let t = table("fn a() { b(); }\nfn b();\n");
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "a");
        assert!(t.fns[0].body.is_some());
        assert_eq!(t.fns[0].owner, Owner::Free);
        assert!(!t.fns[0].is_method());
        assert_eq!(t.fns[0].line, 1);
        assert_eq!(t.fns[1].line, 2);
        assert!(t.fns[1].body.is_none(), "decl has no body");
    }

    #[test]
    fn inherent_and_trait_impl_methods() {
        let src = "impl Foo {\n  fn m(&self) {}\n}\n\
                   impl Code for Bar<T> {\n  fn decode(&self) {}\n}\n";
        let t = table(src);
        assert_eq!(
            t.fns[0].owner,
            Owner::Impl { type_name: "Foo".into(), trait_name: None }
        );
        assert_eq!(
            t.fns[1].owner,
            Owner::Impl { type_name: "Bar".into(), trait_name: Some("Code".into()) }
        );
        assert!(t.by_type_method.contains_key(&("Bar".into(), "decode".into())));
        assert!(t.fns.iter().all(FnSym::is_method));
    }

    #[test]
    fn generic_impl_header_with_nested_angles() {
        // `>>` is one token closing two angle groups; the header parser
        // must not mistake the body brace's level.
        let src = "impl<T: Into<Vec<u8>>> Codec for Wrap<Arc<T>> {\n  fn decode(&self) {}\n}\n";
        let t = table(src);
        assert_eq!(
            t.fns[0].owner,
            Owner::Impl { type_name: "Wrap".into(), trait_name: Some("Codec".into()) }
        );
    }

    #[test]
    fn trait_default_and_declared_methods() {
        let src = "trait Code {\n  fn decode(&self);\n  fn helper(&self) { self.decode() }\n}\n";
        let t = table(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].owner, Owner::Trait { trait_name: "Code".into() });
        assert!(t.fns[0].body.is_none());
        assert!(t.fns[1].body.is_some(), "default method has a body");
        assert_eq!(t.trait_methods["Code"], vec!["decode", "helper"]);
    }

    #[test]
    fn where_clause_does_not_pollute_names() {
        let src = "impl<T> Code for Foo<T> where T: Clone {\n  fn m(&self) {}\n}\n";
        let t = table(src);
        assert_eq!(
            t.fns[0].owner,
            Owner::Impl { type_name: "Foo".into(), trait_name: Some("Code".into()) }
        );
    }

    #[test]
    fn return_impl_trait_is_not_a_container() {
        let src = "fn make() -> impl Iterator<Item = u8> { x.iter() }\nfn other() {}\n";
        let t = table(src);
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns.iter().all(|f| f.owner == Owner::Free));
    }

    #[test]
    fn test_mask_is_recorded() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\nfn ship() {}\n";
        let t = table(src);
        assert!(t.fns[0].in_test);
        assert!(!t.fns[1].in_test);
    }

    #[test]
    fn fn_with_generics_and_slice_return_finds_body() {
        let src = "fn f<T: Ord>(a: &[u8]) -> [u8; 4] { g() }\n";
        let t = table(src);
        assert!(t.fns[0].body.is_some());
    }
}
