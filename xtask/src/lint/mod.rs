//! `cargo xtask lint` v3 — call-graph-aware semantic analysis of the
//! workspace.
//!
//! The PR 2 linter scanned line by line with a comment/string scrubber;
//! PR 5 rewrote it into a token/scope pass ([`lexer`], [`scopes`],
//! [`rules`]) so spans are exact and markers are read from the comment
//! channel. That pass was still *body-local*: an `unwrap()` inside a
//! helper called from `decode` — but living outside `PANIC_SCOPE` —
//! escaped every policy. v3 adds the whole-workspace layers:
//!
//! * [`symbols`] — fn/impl/trait items per file, incl. trait-method
//!   declarations and default bodies;
//! * [`callgraph`] — name-resolved intra-workspace call edges (method
//!   calls fan out to every impl: the conservative answer to `dyn`
//!   dispatch) plus per-function hazard sites;
//! * [`transitive`] — panic-freedom and hot-path-allocation re-expressed
//!   as reachability from the serving roots, every diagnostic carrying a
//!   full call-path trace;
//! * [`locks`] — static lock-order and blocking-under-lock analysis:
//!   typed lock classes with guard-lifetime tracking, held-lock sets
//!   propagated along the call graph, cycles/rank-inversions and I/O
//!   under non-`io_ok` guards flagged with root→acquire traces;
//! * [`sarif`] — SARIF 2.1.0 output (`--sarif`) for inline PR
//!   annotations in CI.
//!
//! The module stays deliberately dependency-free: xtask must build with
//! a bare toolchain (no registry access in the offline harness), so
//! there is no `syn` here — the lexer handles exactly the Rust surface
//! the workspace uses and is regression-tested against the constructs
//! that broke earlier versions (`xtask/tests/fixtures/`).
//!
//! Waivers (`panic-ok:` / `wrap-ok:` / `raw-xor-ok:` / `clone-ok:` /
//! `alloc-ok:` / `lock-ok:`) are inventoried into `--report panics.json`
//! and ratcheted three ways: body-local rules against
//! `xtask/panic_baseline.json`, transitive panic/alloc against
//! `xtask/transitive_baseline.json`, and the lock policies against
//! `xtask/lock_baseline.json` — see [`report`]. Markers that no longer
//! suppress anything are hard errors (`dead-waiver`,
//! [`rules::detect_dead_waivers`]).

pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod scopes;
pub mod symbols;
pub mod transitive;

use report::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Parsed `lint` subcommand options.
pub struct Options {
    /// Write the full waiver inventory (with per-site entries) here.
    pub report_path: Option<PathBuf>,
    /// Write a SARIF 2.1.0 document (errors + waived notes) here.
    pub sarif_path: Option<PathBuf>,
    /// Baseline for the body-local ratchet (default
    /// `xtask/panic_baseline.json`).
    pub baseline_path: PathBuf,
    /// Baseline for the transitive ratchet (default
    /// `xtask/transitive_baseline.json`).
    pub transitive_baseline_path: PathBuf,
    /// Baseline for the lock-policy ratchet (default
    /// `xtask/lock_baseline.json`).
    pub lock_baseline_path: PathBuf,
    /// Write machine-readable coverage stats (lint-stats schema) here.
    pub stats_path: Option<PathBuf>,
    /// Fail when the lock pass costs more wall-clock than the rest of
    /// the lint combined (i.e. the pass more than doubled the runtime).
    pub enforce_time_budget: bool,
    /// Rewrite all baselines from the current counts instead of
    /// ratcheting.
    pub write_baseline: bool,
    /// Skip the ratchet entirely (local iteration).
    pub no_ratchet: bool,
}

impl Options {
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            report_path: None,
            sarif_path: None,
            baseline_path: PathBuf::from("xtask/panic_baseline.json"),
            transitive_baseline_path: PathBuf::from("xtask/transitive_baseline.json"),
            lock_baseline_path: PathBuf::from("xtask/lock_baseline.json"),
            stats_path: None,
            enforce_time_budget: false,
            write_baseline: false,
            no_ratchet: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--report" => {
                    let p = it.next().ok_or("--report needs a path")?;
                    opts.report_path = Some(PathBuf::from(p));
                }
                "--sarif" => {
                    let p = it.next().ok_or("--sarif needs a path")?;
                    opts.sarif_path = Some(PathBuf::from(p));
                }
                "--baseline" => {
                    let p = it.next().ok_or("--baseline needs a path")?;
                    opts.baseline_path = PathBuf::from(p);
                }
                "--transitive-baseline" => {
                    let p = it.next().ok_or("--transitive-baseline needs a path")?;
                    opts.transitive_baseline_path = PathBuf::from(p);
                }
                "--lock-baseline" => {
                    let p = it.next().ok_or("--lock-baseline needs a path")?;
                    opts.lock_baseline_path = PathBuf::from(p);
                }
                "--stats" => {
                    let p = it.next().ok_or("--stats needs a path")?;
                    opts.stats_path = Some(PathBuf::from(p));
                }
                "--enforce-time-budget" => opts.enforce_time_budget = true,
                "--write-baseline" => opts.write_baseline = true,
                "--no-ratchet" => opts.no_ratchet = true,
                other => return Err(format!("unknown lint option {other:?}")),
            }
        }
        Ok(opts)
    }
}

/// Files that join the call graph: shipping crate sources only —
/// integration tests, benches and examples panic/allocate by design.
fn graph_scoped(rel: &str) -> bool {
    (rel.starts_with("crates/") || rel.starts_with("src/"))
        && !rel.contains("/tests/")
        && !rel.contains("/benches/")
        && !rel.contains("/examples/")
}

/// Runs the whole pass from the workspace root. Returns `Ok` with summary
/// lines to print, or `Err` with the failure report.
pub fn run(root: &Path, opts: &Options) -> Result<Vec<String>, String> {
    let t_start = Instant::now();
    let mut paths = Vec::new();
    for dir in rules::SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut paths);
    }
    paths.sort();

    let mut findings: Vec<Finding> = Vec::new();
    // (rel, lexed, scopes) for every readable file, kept for the
    // whole-workspace passes.
    let mut files: Vec<(String, lexer::Lexed, scopes::Scopes)> = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding::error(&rel, 0, "io", format!("unreadable: {e}")));
                continue;
            }
        };
        let lexed = lexer::lex(&text);
        let scopes = scopes::analyze(&lexed);
        rules::lint_file(&rel, &lexed, &scopes, &mut findings);
        files.push((rel, lexed, scopes));
    }

    // Whole-workspace pass: symbol table → call graph → reachability.
    let mut table = symbols::SymbolTable::default();
    for (idx, (rel, lexed, scopes)) in files.iter().enumerate() {
        if graph_scoped(rel) {
            table.add_file(rel, idx, lexed, scopes);
        }
    }
    let graph = callgraph::build(&table, &files);
    transitive::run(&table, &graph, &mut findings);

    // Lock-order & blocking-under-lock pass, individually timed so the
    // --enforce-time-budget gate can prove it stays within its share of
    // the lint's wall clock.
    let t_lock = Instant::now();
    let lock_stats = locks::run(&table, &graph, &files, &mut findings);
    let lock_elapsed = t_lock.elapsed();

    // Dead-waiver check: needs the complete waived-line map (body-local
    // AND transitive waivers both keep a marker alive).
    let mut waived_lines: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.waived) {
        waived_lines.entry(f.file.as_str()).or_default().insert(f.line);
    }
    let mut dead: Vec<Finding> = Vec::new();
    for (rel, lexed, scopes) in &files {
        if graph_scoped(rel) {
            let empty = BTreeSet::new();
            let lines = waived_lines.get(rel.as_str()).unwrap_or(&empty);
            rules::detect_dead_waivers(rel, lexed, scopes, lines, &mut dead);
        }
    }
    findings.extend(dead);

    // Declarative-exemption hygiene: a RELAXED_ALLOWED entry matching no
    // scanned file is a stale policy hole, not a harmless leftover.
    let scanned: Vec<String> = files.iter().map(|(rel, _, _)| rel.clone()).collect();
    for entry in rules::stale_relaxed_entries(&scanned) {
        findings.push(Finding::error(
            entry.path,
            0,
            "relaxed-allowed-stale",
            format!(
                "RELAXED_ALLOWED entry ({}) matches no scanned file — delete the exemption",
                entry.justification
            ),
        ));
    }

    // Crate-root gate: every non-gf crate root pins #![forbid(unsafe_code)]
    // (gf pins deny + scoped allows for the kernel modules).
    for rel in crate_roots(root) {
        let text = std::fs::read_to_string(root.join(&rel)).unwrap_or_default();
        let gate =
            text.contains("#![forbid(unsafe_code)]") || text.contains("#![deny(unsafe_code)]");
        if !gate {
            findings.push(Finding::error(
                &rel,
                0,
                "crate-root-gate",
                "crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]".into(),
            ));
        }
    }

    let call_edges: usize = graph.edges.iter().map(Vec::len).sum();
    let mut summary = Vec::new();
    summary.push(format!(
        "scanned {} files ({} fns, {} call edges)",
        files.len(),
        table.fns.len(),
        call_edges,
    ));
    summary.push(format!(
        "lock graph: {} classes, {} acquisition sites, {} order edges",
        lock_stats.classes, lock_stats.acquisition_sites, lock_stats.order_edges,
    ));

    // Reports are written before the pass/fail decision so CI can upload
    // them (SARIF annotations especially) even from a failing run.
    if let Some(report_path) = &opts.report_path {
        let json = report::render_inventory(&findings, true);
        std::fs::write(root.join(report_path), &json)
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
        summary.push(format!("wrote waiver inventory to {}", report_path.display()));
    }
    if let Some(sarif_path) = &opts.sarif_path {
        let json = sarif::render(&findings);
        std::fs::write(root.join(sarif_path), &json)
            .map_err(|e| format!("writing {}: {e}", sarif_path.display()))?;
        summary.push(format!("wrote SARIF to {}", sarif_path.display()));
    }
    if let Some(stats_path) = &opts.stats_path {
        let json = render_stats(files.len(), table.fns.len(), call_edges, &lock_stats, &findings);
        std::fs::write(root.join(stats_path), &json)
            .map_err(|e| format!("writing {}: {e}", stats_path.display()))?;
        summary.push(format!("wrote lint stats to {}", stats_path.display()));
    }

    let errors: Vec<&Finding> = findings.iter().filter(|f| !f.waived).collect();
    if !errors.is_empty() {
        let mut out = String::new();
        for f in &errors {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!("{} finding(s)\n", errors.len()));
        return Err(out);
    }

    // Three ratchets: body-local waivers vs panic_baseline.json,
    // transitive panic/alloc vs transitive_baseline.json, and the lock
    // policies vs lock_baseline.json. Splitting keeps each baseline
    // untouched by the others' coverage growth. Order matters: the
    // `transitive-lock` test must run before the broader `transitive-`
    // prefix claims the finding.
    let is_lock = |f: &&Finding| f.rule.starts_with("transitive-lock");
    let is_transitive = |f: &&Finding| !is_lock(f) && f.rule.starts_with("transitive-");
    let body: Vec<Finding> = findings
        .iter()
        .filter(|f| !is_transitive(f) && !is_lock(f))
        .cloned()
        .collect();
    let trans: Vec<Finding> = findings.iter().filter(is_transitive).cloned().collect();
    let lock: Vec<Finding> = findings.iter().filter(is_lock).cloned().collect();

    if opts.write_baseline {
        for (set, path) in [
            (&body, &opts.baseline_path),
            (&trans, &opts.transitive_baseline_path),
            (&lock, &opts.lock_baseline_path),
        ] {
            let json = report::render_inventory(set, false);
            std::fs::write(root.join(path), &json)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            summary.push(format!("wrote baseline to {}", path.display()));
        }
    } else if !opts.no_ratchet {
        for (set, path, label) in [
            (&body, &opts.baseline_path, "body"),
            (&trans, &opts.transitive_baseline_path, "transitive"),
            (&lock, &opts.lock_baseline_path, "lock"),
        ] {
            let text = std::fs::read_to_string(root.join(path)).map_err(|e| {
                format!(
                    "missing {label} waiver baseline {}: {e}\n\
                     run `cargo xtask lint --write-baseline` once and commit the file",
                    path.display()
                )
            })?;
            let baseline = report::parse_baseline(&text)?;
            match report::ratchet(set, &baseline) {
                Ok(notes) => summary.extend(notes),
                Err(errs) => return Err(errs.join("\n") + "\n"),
            }
        }
    }

    let counts = report::waiver_counts(&findings);
    let total: usize = counts.values().sum();
    let by_rule = counts
        .iter()
        .map(|(r, n)| format!("{r}={n}"))
        .collect::<Vec<_>>()
        .join(", ");
    summary.push(if total == 0 {
        "0 waivers".to_string()
    } else {
        format!("{total} waivers ({by_rule})")
    });

    // Wall-clock budget: the lint as a whole must stay under 2× its
    // pre-lock-pass runtime, i.e. the lock pass may cost at most as much
    // as everything else combined (50ms grace absorbs timer noise).
    let rest = t_start.elapsed().saturating_sub(lock_elapsed);
    summary.push(format!(
        "lock pass {}ms / rest {}ms",
        lock_elapsed.as_millis(),
        rest.as_millis()
    ));
    if opts.enforce_time_budget && lock_elapsed > rest + Duration::from_millis(50) {
        return Err(format!(
            "lock pass exceeded its wall-clock budget: {}ms vs {}ms for the rest of \
             the lint (budget: lock pass ≤ rest, keeping total ≤ 2× pre-pass runtime)\n",
            lock_elapsed.as_millis(),
            rest.as_millis()
        ));
    }
    Ok(summary)
}

/// Renders the `lint-stats` document consumed by `cargo xtask
/// bench-check`: coverage counters plus per-policy waiver rows. The three
/// transitive policies are always emitted (zero included) so schema drift
/// — a renamed policy, a dropped pass — fails the bench-check pin.
fn render_stats(
    files: usize,
    fns: usize,
    call_edges: usize,
    lock_stats: &locks::LockStats,
    findings: &[Finding],
) -> String {
    let counts = report::waiver_counts(findings);
    let mut policies: BTreeSet<&str> =
        ["transitive-panic", "transitive-lock-order", "transitive-lock-io"]
            .into_iter()
            .collect();
    policies.extend(counts.keys());
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"lint-stats\",\n");
    out.push_str(&format!("  \"files\": {files},\n"));
    out.push_str(&format!("  \"fns\": {fns},\n"));
    out.push_str(&format!("  \"call_edges\": {call_edges},\n"));
    out.push_str(&format!("  \"lock_classes\": {},\n", lock_stats.classes));
    out.push_str(&format!(
        "  \"acquisition_sites\": {},\n",
        lock_stats.acquisition_sites
    ));
    out.push_str(&format!("  \"order_edges\": {},\n", lock_stats.order_edges));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = policies
        .iter()
        .map(|p| {
            format!(
                "    {{ \"policy\": \"{p}\", \"waivers\": {} }}",
                counts.get(*p).copied().unwrap_or(0)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Every crate root (lib.rs and bin main files) that must pin the
/// unsafe-code gate.
fn crate_roots(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = entry.path().join(candidate);
                if p.is_file() {
                    out.push(
                        p.strip_prefix(root)
                            .unwrap_or(&p)
                            .to_string_lossy()
                            .replace('\\', "/"),
                    );
                }
            }
            // bin targets (e.g. crates/bench/src/bin/*.rs)
            let bins = entry.path().join("src/bin");
            if let Ok(bin_entries) = std::fs::read_dir(&bins) {
                for b in bin_entries.flatten() {
                    let p = b.path();
                    if p.extension().is_some_and(|e| e == "rs") {
                        out.push(
                            p.strip_prefix(root)
                                .unwrap_or(&p)
                                .to_string_lossy()
                                .replace('\\', "/"),
                        );
                    }
                }
            }
        }
    }
    if root.join("src/lib.rs").is_file() {
        out.push("src/lib.rs".to_string());
    }
    out.sort();
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Skip build artifacts and the lint regression fixtures (they
            // contain deliberate violations).
            if path.file_name().is_some_and(|n| n == "target" || n == "fixtures") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags() {
        let args: Vec<String> = ["--report", "panics.json", "--no-ratchet", "--sarif", "l.sarif"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Options::parse(&args).unwrap();
        assert_eq!(o.report_path.as_deref(), Some(Path::new("panics.json")));
        assert_eq!(o.sarif_path.as_deref(), Some(Path::new("l.sarif")));
        assert!(o.no_ratchet);
        assert!(!o.write_baseline);
        assert_eq!(o.baseline_path, Path::new("xtask/panic_baseline.json"));
        assert_eq!(
            o.transitive_baseline_path,
            Path::new("xtask/transitive_baseline.json")
        );
    }

    #[test]
    fn options_parse_lock_flags() {
        let args: Vec<String> = [
            "--stats",
            "LINT_STATS.json",
            "--lock-baseline",
            "lb.json",
            "--enforce-time-budget",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = Options::parse(&args).unwrap();
        assert_eq!(o.stats_path.as_deref(), Some(Path::new("LINT_STATS.json")));
        assert_eq!(o.lock_baseline_path, Path::new("lb.json"));
        assert!(o.enforce_time_budget);
        let d = Options::parse(&[]).unwrap();
        assert_eq!(d.lock_baseline_path, Path::new("xtask/lock_baseline.json"));
        assert!(d.stats_path.is_none());
        assert!(!d.enforce_time_budget);
    }

    #[test]
    fn stats_doc_pins_all_three_transitive_policies() {
        let findings = vec![
            Finding::waived("crates/rs/src/lib.rs", 7, "transitive-panic", "why".into()),
            Finding::waived("crates/store/src/lock_table.rs", 9, "transitive-lock-order", "why".into()),
        ];
        let stats = locks::LockStats {
            classes: 5,
            acquisition_sites: 40,
            order_edges: 6,
        };
        let json = render_stats(100, 900, 2000, &stats, &findings);
        assert!(json.contains("\"bench\": \"lint-stats\""));
        assert!(json.contains("\"lock_classes\": 5"));
        assert!(json.contains("\"policy\": \"transitive-panic\", \"waivers\": 1"));
        assert!(json.contains("\"policy\": \"transitive-lock-order\", \"waivers\": 1"));
        // Zero-waiver policies still get a row: their disappearance is
        // schema drift, not a cleanup.
        assert!(json.contains("\"policy\": \"transitive-lock-io\", \"waivers\": 0"));
    }

    #[test]
    fn options_reject_unknown() {
        assert!(Options::parse(&["--wat".to_string()]).is_err());
        assert!(Options::parse(&["--report".to_string()]).is_err());
        assert!(Options::parse(&["--sarif".to_string()]).is_err());
    }

    #[test]
    fn graph_scope_excludes_test_code() {
        assert!(graph_scoped("crates/rs/src/lib.rs"));
        assert!(graph_scoped("src/lib.rs"));
        assert!(!graph_scoped("tests/audit_codes.rs"));
        assert!(!graph_scoped("crates/bench/benches/encode_benches.rs"));
        assert!(!graph_scoped("crates/ec/tests/it.rs"));
        assert!(!graph_scoped("xtask/src/main.rs"));
    }
}
