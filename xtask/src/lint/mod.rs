//! `cargo xtask lint` v2 — token-tree semantic analysis of the workspace.
//!
//! The PR 2 linter scanned line by line with a comment/string scrubber.
//! That missed anything rustfmt split across lines (an `unsafe\n{` block),
//! mis-scoped test masking (it assumed `#[cfg(test)]` was a suffix of the
//! file), and leaked multi-line string literals into "code" (the scrubber
//! reset its string state at every newline). This rewrite lexes each file
//! into a real token stream ([`lexer`]), computes delimiter matching and
//! `#[cfg(test)]` item extents ([`scopes`]), and evaluates every policy
//! over tokens ([`rules`]), so spans are exact and markers are read from
//! the comment channel instead of raw-substring sniffing.
//!
//! The module is deliberately dependency-free: xtask must build with a
//! bare toolchain (no registry access in the offline harness), so there
//! is no `syn` here — the lexer handles exactly the Rust surface the
//! workspace uses and is regression-tested against the constructs that
//! broke the line scanner (`xtask/tests/fixtures/`).
//!
//! Waivers (`panic-ok:` / `wrap-ok:` / `raw-xor-ok:` / `clone-ok:`) are
//! inventoried into `--report panics.json` and ratcheted against the
//! committed `xtask/panic_baseline.json` — see [`report`].

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scopes;

use report::Finding;
use std::path::{Path, PathBuf};

/// Parsed `lint` subcommand options.
pub struct Options {
    /// Write the full waiver inventory (with per-site entries) here.
    pub report_path: Option<PathBuf>,
    /// Baseline file for the ratchet (default `xtask/panic_baseline.json`).
    pub baseline_path: PathBuf,
    /// Rewrite the baseline from the current counts instead of ratcheting.
    pub write_baseline: bool,
    /// Skip the ratchet entirely (local iteration).
    pub no_ratchet: bool,
}

impl Options {
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            report_path: None,
            baseline_path: PathBuf::from("xtask/panic_baseline.json"),
            write_baseline: false,
            no_ratchet: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--report" => {
                    let p = it.next().ok_or("--report needs a path")?;
                    opts.report_path = Some(PathBuf::from(p));
                }
                "--baseline" => {
                    let p = it.next().ok_or("--baseline needs a path")?;
                    opts.baseline_path = PathBuf::from(p);
                }
                "--write-baseline" => opts.write_baseline = true,
                "--no-ratchet" => opts.no_ratchet = true,
                other => return Err(format!("unknown lint option {other:?}")),
            }
        }
        Ok(opts)
    }
}

/// Runs the whole pass from the workspace root. Returns `Ok` with summary
/// lines to print, or `Err` with the failure report.
pub fn run(root: &Path, opts: &Options) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for dir in rules::SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding::error(&rel, 0, "io", format!("unreadable: {e}")));
                continue;
            }
        };
        let lexed = lexer::lex(&text);
        let scopes = scopes::analyze(&lexed);
        rules::lint_file(&rel, &lexed, &scopes, &mut findings);
    }

    // Crate-root gate: every non-gf crate root pins #![forbid(unsafe_code)]
    // (gf pins deny + scoped allows for the kernel modules).
    for rel in crate_roots(root) {
        let text = std::fs::read_to_string(root.join(&rel)).unwrap_or_default();
        let gate =
            text.contains("#![forbid(unsafe_code)]") || text.contains("#![deny(unsafe_code)]");
        if !gate {
            findings.push(Finding::error(
                &rel,
                0,
                "crate-root-gate",
                "crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]".into(),
            ));
        }
    }

    let mut summary = Vec::new();
    summary.push(format!("scanned {} files", files.len()));

    if let Some(report_path) = &opts.report_path {
        let json = report::render_inventory(&findings, true);
        std::fs::write(root.join(report_path), &json)
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
        summary.push(format!("wrote waiver inventory to {}", report_path.display()));
    }

    let errors: Vec<&Finding> = findings.iter().filter(|f| !f.waived).collect();
    if !errors.is_empty() {
        let mut out = String::new();
        for f in &errors {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!("{} finding(s)\n", errors.len()));
        return Err(out);
    }

    if opts.write_baseline {
        let json = report::render_inventory(&findings, false);
        std::fs::write(root.join(&opts.baseline_path), &json)
            .map_err(|e| format!("writing {}: {e}", opts.baseline_path.display()))?;
        summary.push(format!("wrote baseline to {}", opts.baseline_path.display()));
    } else if !opts.no_ratchet {
        let text = std::fs::read_to_string(root.join(&opts.baseline_path)).map_err(|e| {
            format!(
                "missing waiver baseline {}: {e}\n\
                 run `cargo xtask lint --write-baseline` once and commit the file",
                opts.baseline_path.display()
            )
        })?;
        let baseline = report::parse_baseline(&text)?;
        match report::ratchet(&findings, &baseline) {
            Ok(notes) => summary.extend(notes),
            Err(errs) => return Err(errs.join("\n") + "\n"),
        }
    }

    let counts = report::waiver_counts(&findings);
    let total: usize = counts.values().sum();
    let by_rule = counts
        .iter()
        .map(|(r, n)| format!("{r}={n}"))
        .collect::<Vec<_>>()
        .join(", ");
    summary.push(if total == 0 {
        "0 waivers".to_string()
    } else {
        format!("{total} waivers ({by_rule})")
    });
    Ok(summary)
}

/// Every crate root (lib.rs and bin main files) that must pin the
/// unsafe-code gate.
fn crate_roots(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = entry.path().join(candidate);
                if p.is_file() {
                    out.push(
                        p.strip_prefix(root)
                            .unwrap_or(&p)
                            .to_string_lossy()
                            .replace('\\', "/"),
                    );
                }
            }
            // bin targets (e.g. crates/bench/src/bin/*.rs)
            let bins = entry.path().join("src/bin");
            if let Ok(bin_entries) = std::fs::read_dir(&bins) {
                for b in bin_entries.flatten() {
                    let p = b.path();
                    if p.extension().is_some_and(|e| e == "rs") {
                        out.push(
                            p.strip_prefix(root)
                                .unwrap_or(&p)
                                .to_string_lossy()
                                .replace('\\', "/"),
                        );
                    }
                }
            }
        }
    }
    if root.join("src/lib.rs").is_file() {
        out.push("src/lib.rs".to_string());
    }
    out.sort();
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Skip build artifacts and the lint regression fixtures (they
            // contain deliberate violations).
            if path.file_name().is_some_and(|n| n == "target" || n == "fixtures") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags() {
        let args: Vec<String> = ["--report", "panics.json", "--no-ratchet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Options::parse(&args).unwrap();
        assert_eq!(o.report_path.as_deref(), Some(Path::new("panics.json")));
        assert!(o.no_ratchet);
        assert!(!o.write_baseline);
        assert_eq!(o.baseline_path, Path::new("xtask/panic_baseline.json"));
    }

    #[test]
    fn options_reject_unknown() {
        assert!(Options::parse(&["--wat".to_string()]).is_err());
        assert!(Options::parse(&["--report".to_string()]).is_err());
    }
}
