//! Intra-workspace call graph over the symbol table, with hazard sites.
//!
//! Fourth layer of the stack (lexer → scopes → symbols → **call graph** →
//! policies). Each function body is scanned once for
//!
//! * **call sites**, resolved *by name* against the [`SymbolTable`]:
//!   - `helper(..)` — free call → every free fn named `helper`;
//!   - `self.method(..)` — resolved against the enclosing impl's type
//!     (its inherent methods plus the methods of every trait it
//!     implements); inside a trait default body it fans to the trait's
//!     own impls, like dyn dispatch;
//!   - `x.method(..)` where the body contains `let x = Type::new(..)`
//!     (or any `Type::ctor(..)` / `Type { .. }` initialiser) — resolved
//!     against `Type`, exactly like a `self.` receiver;
//!   - `x.method(..)` — receiver unknown → every impl/trait method named
//!     `method` (this is the conservative answer to dynamic dispatch:
//!     a call through `&dyn ErasureCode` edges to **all** impls of the
//!     called method, and to the trait's default body if it has one),
//!     EXCEPT the [`UBIQUITOUS_METHODS`] — std collection/iterator names
//!     like `get`/`insert` whose receiver is a `BTreeMap` or slice
//!     essentially every time they appear, where name fan-out would wire
//!     `map.get(..)` to every workspace method that happens to be called
//!     `get` (measured on this workspace: one `BTreeMap::get` inside
//!     `apply_into` manufactured fifty bogus reachability chains);
//!   - `Type::assoc(..)` — path call → the named type's (or trait's)
//!     methods, falling back to free fns for `module::helper(..)` paths;
//!   - `Self::assoc(..)` — resolved against the enclosing impl's type.
//! * **hazard sites** — the panic-freedom hazards (`unwrap`/`expect`,
//!   `panic!`-family macros, shard-name `[]`-indexing) and the hot-path
//!   allocation hazards (`vec!`, `.to_vec()`, `with_capacity`,
//!   `.collect()`), each with its `panic-ok:`/`alloc-ok:` waiver looked
//!   up from the comment channel.
//!
//! No type inference happens here; over-approximation is the point. A
//! name-resolved edge that cannot exist at runtime can only make the
//! reachability policies *stricter*, never let a real panic escape.
//!
//! Nested `fn` items are their own graph nodes; their token ranges are
//! skipped while scanning the enclosing body so hazards are attributed
//! to the function that actually contains them.

use super::lexer::{Lexed, TokKind};
use super::rules::{marker, SHARD_INDEX_NAMES};
use super::scopes::Scopes;
use super::symbols::{FnSym, Owner, SymbolTable};
use std::collections::BTreeSet;

/// Method names whose receiver-unknown `.name(` form is a std
/// collection/slice/iterator call for all practical purposes. Excluded
/// from the conservative method fan-out: resolving `map.get(k)` to every
/// workspace fn named `get` produces only false edges, and false edges
/// on *these* names dominate the whole graph (maps and slices are
/// everywhere). Calls to same-named workspace methods still resolve via
/// a `self.` receiver or a `Type::`/`Trait::` path — the forms the
/// workspace actually uses for them.
pub const UBIQUITOUS_METHODS: &[&str] = &[
    "get", "get_mut", "insert", "remove", "push", "pop", "extend", "clear", "contains",
    "contains_key", "entry", "keys", "values", "iter", "iter_mut", "into_iter", "next", "len",
    "is_empty", "first", "last", "split_at", "split_at_mut", "chunks", "chunks_exact", "drain",
    "retain", "sort", "sort_unstable", "clone", "as_ref", "as_mut", "as_slice", "as_bytes",
    "to_string", "map", "and_then", "unwrap_or", "unwrap_or_default", "unwrap_or_else", "take",
    "copy_from_slice", "fill", "resize", "truncate", "reserve",
    // `Path::join` / `JoinHandle::join` account for every unknown-receiver
    // `.join(` in the workspace; fanning them to `ServeHandle::join` wired
    // the store's path arithmetic into the daemon shutdown machinery and
    // poisoned every held-lock trace through `manifest_path`.
    "join",
];

/// Rust keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "let", "mut", "ref", "move",
    "as", "fn", "pub", "use", "impl", "trait", "struct", "enum", "mod", "where", "unsafe",
    "async", "await", "dyn", "const", "static", "crate", "super", "break", "continue", "type",
];

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Callee's index in [`SymbolTable::fns`].
    pub callee: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
    /// Token index of the call's name token in the caller's file stream.
    /// The lock pass intersects this with guard-lifetime extents to know
    /// which locks are held when the call is made.
    pub tok: usize,
}

/// One hazard site inside a function body.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// 1-based line of the hazard.
    pub line: u32,
    /// Human-readable description (`.unwrap()`, `vec![…]`, `shards[…]`).
    pub what: &'static str,
    /// The waiver invariant when a `panic-ok:`/`alloc-ok:` marker covers
    /// the site (non-empty text required, same grammar as body rules).
    pub waiver: Option<String>,
}

/// The workspace call graph: adjacency + per-node hazards, indexed by
/// the symbol table's fn ids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[id]` = resolved callees of fn `id`.
    pub edges: Vec<Vec<Edge>>,
    /// Panic-freedom hazards per fn.
    pub panic_hazards: Vec<Vec<Hazard>>,
    /// Allocation hazards per fn.
    pub alloc_hazards: Vec<Vec<Hazard>>,
}

/// Builds the graph. `files[i]` must be the `(rel, lexed, scopes)` triple
/// whose index matches every `FnSym::file_idx` in the table.
pub fn build(table: &SymbolTable, files: &[(String, Lexed, Scopes)]) -> CallGraph {
    let n = table.fns.len();
    let mut g = CallGraph {
        edges: vec![Vec::new(); n],
        panic_hazards: vec![Vec::new(); n],
        alloc_hazards: vec![Vec::new(); n],
    };

    // Body-start index → fn id, for skipping nested fn bodies fast.
    let mut body_start: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for (id, f) in table.fns.iter().enumerate() {
        if let Some((open, _)) = f.body {
            body_start.insert((f.file_idx, open), id);
        }
    }

    for (id, f) in table.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let Some((_, lexed, _)) = files.get(f.file_idx) else { continue };
        scan_body(table, f, id, lexed, open, close, &body_start, &mut g);
    }
    g
}

/// Scans one fn body for calls and hazards.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    table: &SymbolTable,
    f: &FnSym,
    id: usize,
    lexed: &Lexed,
    open: usize,
    close: usize,
    body_start: &std::collections::BTreeMap<(usize, usize), usize>,
    g: &mut CallGraph,
) {
    let toks = &lexed.toks;
    let comments = &lexed.comments;
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let bindings = local_bindings(toks, open, close);
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];

        // A nested `fn` item is its own graph node: skip its body so its
        // hazards are not attributed to the enclosing function (defining
        // a fn is not calling it).
        if t.kind == TokKind::Ident
            && t.text == "fn"
            && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            if let Some((&(_, nested_open), &nested_id)) = body_start
                .range((f.file_idx, j + 1)..(f.file_idx, close))
                .next()
            {
                if nested_open < close {
                    if let Some((_, nested_close)) = table.fns[nested_id].body {
                        j = nested_close + 1;
                        continue;
                    }
                }
            }
        }

        if t.kind != TokKind::Ident {
            j += 1;
            continue;
        }
        let name = t.text.as_str();
        let line = t.line;
        let next = |k: usize| toks.get(j + k);
        let next_is = |k: usize, s: &str| next(k).is_some_and(|t| t.kind == TokKind::Punct && t.text == s);
        let prev = j.checked_sub(1).and_then(|p| toks.get(p));
        let prev_is = |s: &str| prev.is_some_and(|t| t.kind == TokKind::Punct && t.text == s);

        // Macro hazards.
        if next_is(1, "!") {
            match name {
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    g.panic_hazards[id].push(hazard(comments, line, name_of_macro(name), "panic-ok:"));
                }
                "vec" => {
                    g.alloc_hazards[id].push(hazard(comments, line, "vec![…]", "alloc-ok:"));
                }
                _ => {}
            }
            j += 1;
            continue;
        }

        // Shard-buffer indexing.
        if SHARD_INDEX_NAMES.contains(&name) && next_is(1, "[") && !prev_is("#") {
            g.panic_hazards[id].push(hazard(comments, line, "shard-buffer [i] indexing", "panic-ok:"));
            j += 1;
            continue;
        }

        if !next_is(1, "(") || KEYWORDS.contains(&name) {
            j += 1;
            continue;
        }

        // `name(` — classify by the preceding token.
        if prev_is(".") {
            match name {
                "unwrap" => g.panic_hazards[id].push(hazard(comments, line, ".unwrap()", "panic-ok:")),
                "expect" => g.panic_hazards[id].push(hazard(comments, line, ".expect()", "panic-ok:")),
                "to_vec" => g.alloc_hazards[id].push(hazard(comments, line, ".to_vec()", "alloc-ok:")),
                "collect" => g.alloc_hazards[id].push(hazard(comments, line, ".collect()", "alloc-ok:")),
                _ => {
                    let recv = j
                        .checked_sub(2)
                        .and_then(|p| toks.get(p))
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.as_str());
                    // A receiver that is itself field-accessed
                    // (`self.plans.insert(..)`) is not the local binding
                    // of the same name.
                    let recv_is_plain = j
                        .checked_sub(3)
                        .and_then(|p| toks.get(p))
                        .is_none_or(|t| !(t.kind == TokKind::Punct && t.text == "."));
                    let callees = match recv {
                        Some("self") => resolve_self_method(table, f, name),
                        Some(r) if recv_is_plain => match bindings.get(r) {
                            Some(ty) => resolve_typed_method(table, ty, name),
                            None => resolve_method(table, name),
                        },
                        _ => resolve_method(table, name),
                    };
                    for callee in callees {
                        edges.insert(Edge { callee, line, tok: j });
                    }
                }
            }
        } else if prev_is("::") {
            if name == "with_capacity" {
                g.alloc_hazards[id].push(hazard(comments, line, "with_capacity(…)", "alloc-ok:"));
            } else {
                let qual = j
                    .checked_sub(2)
                    .and_then(|p| toks.get(p))
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str());
                for callee in resolve_path(table, f, qual, name) {
                    edges.insert(Edge { callee, line, tok: j });
                }
            }
        } else if name == "with_capacity" {
            g.alloc_hazards[id].push(hazard(comments, line, "with_capacity(…)", "alloc-ok:"));
        } else {
            for callee in resolve_free(table, name) {
                edges.insert(Edge { callee, line, tok: j });
            }
        }
        j += 1;
    }

    g.edges[id] = edges
        .into_iter()
        .filter(|e| e.callee != id && !table.fns[e.callee].in_test)
        .collect();
}

fn name_of_macro(name: &str) -> &'static str {
    match name {
        "panic" => "panic!",
        "unreachable" => "unreachable!",
        "todo" => "todo!",
        _ => "unimplemented!",
    }
}

fn hazard(
    comments: &[super::lexer::CommentLine],
    line: u32,
    what: &'static str,
    marker_name: &str,
) -> Hazard {
    let waiver = marker(comments, line, marker_name)
        .filter(|inv| !inv.is_empty())
        .map(str::to_string);
    Hazard { line, what, waiver }
}

/// `x.name(..)` with an unknown receiver — all impl methods + trait
/// decls/defaults of that name, except the [`UBIQUITOUS_METHODS`] (see
/// the module docs for why those fan-outs are pure noise).
fn resolve_method(table: &SymbolTable, name: &str) -> Vec<usize> {
    if UBIQUITOUS_METHODS.contains(&name) {
        return Vec::new();
    }
    table.methods_by_name.get(name).cloned().unwrap_or_default()
}

/// `self.name(..)` — the receiver's type IS the enclosing impl's type, so
/// resolve precisely: the type's own methods (inherent or any of its
/// trait impls) plus trait-default bodies of traits it implements. Inside
/// a trait's own default body, fan to that trait's impls (dyn-style).
/// Falls back to the conservative fan-out when the name is foreign to the
/// owner (a deref'd field, a std method, a blanket impl).
fn resolve_self_method(table: &SymbolTable, f: &FnSym, name: &str) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    match &f.owner {
        Owner::Impl { type_name, .. } => return resolve_typed_method(table, type_name, name),
        Owner::Trait { trait_name } => {
            // The trait's own decl/default …
            out.extend(
                table
                    .by_type_method
                    .get(&(trait_name.clone(), name.to_string()))
                    .into_iter()
                    .flatten(),
            );
            // … and every impl of it (a default body dispatches).
            for &id in table.methods_by_name.get(name).into_iter().flatten() {
                if matches!(
                    &table.fns[id].owner,
                    Owner::Impl { trait_name: Some(tn), .. } if tn == trait_name
                ) {
                    out.push(id);
                }
            }
        }
        Owner::Free => {}
    }
    if out.is_empty() {
        return resolve_method(table, name);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Methods callable on a value of known workspace type `ty`: its inherent
/// and trait-impl methods, plus default bodies of every trait it
/// implements. Falls back to the conservative fan-out when `ty` has no
/// method of that name (a deref, a std method, a blanket impl).
fn resolve_typed_method(table: &SymbolTable, ty: &str, name: &str) -> Vec<usize> {
    let mut out: Vec<usize> = table
        .by_type_method
        .get(&(ty.to_string(), name.to_string()))
        .cloned()
        .unwrap_or_default();
    for g in &table.fns {
        if let Owner::Impl { type_name: tn, trait_name: Some(tr) } = &g.owner {
            if tn == ty {
                out.extend(
                    table
                        .by_type_method
                        .get(&(tr.clone(), name.to_string()))
                        .into_iter()
                        .flatten(),
                );
            }
        }
    }
    if out.is_empty() {
        return resolve_method(table, name);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Scans a body for `let [mut] x = path::to::Type::ctor(..)` and
/// `let [mut] x = Type { .. }` initialisers, mapping each binding name to
/// its type's head identifier. Type-annotated or pattern-destructuring
/// `let`s are skipped (the annotation form is rare in this workspace and
/// a missing entry only means the conservative fan-out applies).
fn local_bindings(
    toks: &[super::lexer::Tok],
    open: usize,
    close: usize,
) -> std::collections::BTreeMap<String, String> {
    let mut out = std::collections::BTreeMap::new();
    let mut j = open + 1;
    while j < close {
        if !(toks[j].kind == TokKind::Ident && toks[j].text == "let") {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut") {
            k += 1;
        }
        let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else {
            j += 1;
            continue;
        };
        if !toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Punct && t.text == "=") {
            j = k + 1; // `let Some(x)` patterns / `let x: T` annotations
            continue;
        }
        // Walk the initialiser's leading path: Ident (:: Ident)* then a
        // `(` (constructor call) or `{` (struct literal).
        let mut path: Vec<&str> = Vec::new();
        let mut m = k + 2;
        while let Some(t) = toks.get(m) {
            if t.kind == TokKind::Ident {
                path.push(t.text.as_str());
                m += 1;
                if toks.get(m).is_some_and(|t| t.kind == TokKind::Punct && t.text == "::") {
                    m += 1;
                    continue;
                }
            }
            break;
        }
        let head_is_type = |s: &str| s.chars().next().is_some_and(char::is_uppercase);
        let ty = match toks.get(m).map(|t| (t.kind, t.text.as_str())) {
            // `Type::new(..)` — the type is the segment before the ctor.
            Some((TokKind::Punct, "(")) if path.len() >= 2 => {
                path[path.len() - 2].to_string()
            }
            // `Type { .. }` struct literal.
            Some((TokKind::Punct, "{")) if !path.is_empty() => {
                path[path.len() - 1].to_string()
            }
            _ => {
                j = k + 1;
                continue;
            }
        };
        if head_is_type(&ty) {
            out.insert(name.text.clone(), ty);
        }
        j = m;
    }
    out
}

/// Plain `name(..)` — free fns of that name only (methods need a
/// receiver or a `Self::`/`Type::` path).
fn resolve_free(table: &SymbolTable, name: &str) -> Vec<usize> {
    table.free_by_name.get(name).cloned().unwrap_or_default()
}

/// `Qual::name(..)`: the qualifier is the enclosing impl's type for
/// `Self`, a workspace type or trait, or a module path segment (then the
/// call is a free fn).
fn resolve_path(table: &SymbolTable, f: &FnSym, qual: Option<&str>, name: &str) -> Vec<usize> {
    let qual = match qual {
        Some("Self") => match &f.owner {
            Owner::Impl { type_name, .. } => type_name.clone(),
            Owner::Trait { trait_name } => trait_name.clone(),
            Owner::Free => return resolve_free(table, name),
        },
        Some(q) => q.to_string(),
        // Leading-`::` or turbofish-qualified paths: fall back to any fn
        // of that name (conservative).
        None => {
            let mut out = resolve_free(table, name);
            out.extend(resolve_method(table, name));
            return out;
        }
    };
    let mut out: Vec<usize> = table
        .by_type_method
        .get(&(qual.clone(), name.to_string()))
        .cloned()
        .unwrap_or_default();
    // `Trait::method(..)` (incl. UFCS-ish calls): fan to every impl of
    // that trait's method, same as dyn dispatch.
    if table.trait_methods.get(&qual).is_some_and(|ms| ms.iter().any(|m| m == name)) {
        for &id in table.methods_by_name.get(name).into_iter().flatten() {
            if matches!(
                &table.fns[id].owner,
                Owner::Impl { trait_name: Some(tn), .. } if *tn == qual
            ) {
                out.push(id);
            }
        }
    }
    if out.is_empty() {
        // Module-qualified free call (`plan::compile(..)`).
        out = resolve_free(table, name);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lexer::lex;
    use crate::lint::scopes::analyze;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let mut t = SymbolTable::default();
        t.add_file("crates/x/src/lib.rs", 0, &lexed, &scopes);
        let files = vec![("crates/x/src/lib.rs".to_string(), lexed, scopes)];
        let g = build(&t, &files);
        (t, g)
    }

    fn id(t: &SymbolTable, name: &str) -> usize {
        t.by_name[name][0]
    }

    #[test]
    fn direct_call_edge() {
        let (t, g) = graph("fn a() { b(1); }\nfn b(x: u8) {}\n");
        let edges: Vec<(usize, u32)> =
            g.edges[id(&t, "a")].iter().map(|e| (e.callee, e.line)).collect();
        assert_eq!(edges, vec![(id(&t, "b"), 1)]);
    }

    #[test]
    fn method_call_fans_to_all_impls() {
        let src = "trait T { fn m(&self); }\n\
                   impl T for A { fn m(&self) {} }\n\
                   impl T for B { fn m(&self) {} }\n\
                   fn drive(x: &dyn T) { x.m(); }\n";
        let (t, g) = graph(src);
        let callees: Vec<usize> = g.edges[id(&t, "drive")].iter().map(|e| e.callee).collect();
        assert_eq!(callees.len(), 3, "decl + both impls: {callees:?}");
    }

    #[test]
    fn hazards_collected_with_waivers() {
        let src = "fn a(x: Option<u8>) {\n    x.unwrap();\n    y.expect(\"m\"); // panic-ok: proven\n}\n";
        let (t, g) = graph(src);
        let h = &g.panic_hazards[id(&t, "a")];
        assert_eq!(h.len(), 2);
        assert!(h[0].waiver.is_none());
        assert_eq!(h[1].waiver.as_deref(), Some("proven"));
    }

    #[test]
    fn alloc_hazards_and_self_path() {
        let src = "impl S {\n  fn encode_into(&self) { let v = Vec::with_capacity(4); Self::helper(); }\n  fn helper() { let x = vec![0u8; 2]; }\n}\n";
        let (t, g) = graph(src);
        let e = id(&t, "encode_into");
        assert_eq!(g.alloc_hazards[e].len(), 1, "with_capacity");
        let edges: Vec<(usize, u32)> = g.edges[e].iter().map(|e| (e.callee, e.line)).collect();
        assert_eq!(edges, vec![(id(&t, "helper"), 2)]);
        assert_eq!(g.alloc_hazards[id(&t, "helper")].len(), 1, "vec!");
    }

    #[test]
    fn test_fns_are_excluded() {
        let src = "fn a() { b(); }\nfn b() {}\n#[cfg(test)]\nmod t { fn a() { x.unwrap(); } }\n";
        let (t, g) = graph(src);
        // The test `a` exists in the table but has no scanned body.
        let test_a = t.by_name["a"].iter().copied().find(|&i| t.fns[i].in_test).unwrap();
        assert!(g.edges[test_a].is_empty());
        assert!(g.panic_hazards[test_a].is_empty());
    }

    #[test]
    fn nested_fn_hazard_not_attributed_to_parent() {
        let src = "fn outer() {\n  fn inner(x: Option<u8>) { x.unwrap(); }\n  inner(None);\n}\n";
        let (t, g) = graph(src);
        assert!(g.panic_hazards[id(&t, "outer")].is_empty(), "hazard belongs to inner");
        assert_eq!(g.panic_hazards[id(&t, "inner")].len(), 1);
        // And the call edge outer → inner exists.
        assert!(g.edges[id(&t, "outer")].iter().any(|e| e.callee == id(&t, "inner")));
    }

    #[test]
    fn shard_indexing_is_a_hazard() {
        let src = "fn f(shards: &[Vec<u8>]) { let _ = shards[0].len(); }\n";
        let (t, g) = graph(src);
        assert_eq!(g.panic_hazards[id(&t, "f")].len(), 1);
        assert_eq!(g.panic_hazards[id(&t, "f")][0].what, "shard-buffer [i] indexing");
    }

    #[test]
    fn ubiquitous_method_names_do_not_fan_out() {
        // `map.get(..)` / `m.insert(..)` are std collection calls; wiring
        // them to workspace methods named `get`/`insert` is pure noise.
        let src = "impl Vault { fn get(&self, k: u64) { x.unwrap(); } }\n\
                   fn read(map: &M, k: u64) { map.get(&k); map.insert(k, 0); }\n";
        let (t, g) = graph(src);
        assert!(g.edges[id(&t, "read")].is_empty(), "{:?}", g.edges[id(&t, "read")]);
    }

    #[test]
    fn self_receiver_resolves_to_owner_type_only() {
        // `self.get(..)` inside GfMatrix is GfMatrix::get, never the
        // unrelated Vault::get — and it is NOT dropped by the ubiquitous
        // filter (the receiver's type is known).
        let src = "impl GfMatrix {\n  fn get(&self, r: usize) -> u8 { 0 }\n\
                   \n  fn apply_into(&self) { self.get(0); }\n}\n\
                   impl Vault { fn get(&self, k: u64) {} }\n";
        let (t, g) = graph(src);
        let apply = id(&t, "apply_into");
        let gf_get = t.by_name["get"]
            .iter()
            .copied()
            .find(|&i| matches!(&t.fns[i].owner, Owner::Impl { type_name, .. } if type_name == "GfMatrix"))
            .unwrap();
        let callees: Vec<usize> = g.edges[apply].iter().map(|e| e.callee).collect();
        assert_eq!(callees, vec![gf_get], "{callees:?}");
    }

    #[test]
    fn self_in_trait_default_fans_to_trait_impls() {
        let src = "trait Code {\n  fn decode(&self);\n\
                   \n  fn helper(&self) { self.decode() }\n}\n\
                   impl Code for A { fn decode(&self) {} }\n\
                   impl Other for B { fn decode(&self) {} }\n";
        let (t, g) = graph(src);
        let helper = id(&t, "helper");
        let callees: Vec<usize> = g.edges[helper].iter().map(|e| e.callee).collect();
        let b_decode = t.by_name["decode"]
            .iter()
            .copied()
            .find(|&i| matches!(&t.fns[i].owner, Owner::Impl { type_name, .. } if type_name == "B"))
            .unwrap();
        assert!(!callees.contains(&b_decode), "unrelated trait's impl excluded: {callees:?}");
        assert_eq!(callees.len(), 2, "decl + Code-for-A impl: {callees:?}");
    }

    #[test]
    fn self_field_method_still_fans_conservatively() {
        // `self.plans.insert(..)` — the receiver is the FIELD, not self;
        // `insert` is ubiquitous so it resolves to nothing, but a
        // non-ubiquitous field method keeps the conservative fan-out.
        let src = "impl S { fn plan(&mut self) { self.plans.insert(1); self.inner.solve(); } }\n\
                   impl Gauss { fn solve(&self) {} }\n";
        let (t, g) = graph(src);
        let callees: Vec<usize> = g.edges[id(&t, "plan")].iter().map(|e| e.callee).collect();
        assert_eq!(callees, vec![id(&t, "solve")], "{callees:?}");
    }

    #[test]
    fn let_binding_receiver_resolves_to_its_type() {
        // `let mut sim = Simulation::new(); … sim.run()` must edge to
        // Simulation::run, not to the unrelated TierEngine::run.
        let src = "impl Simulation { fn new() -> Self { Simulation } fn run(&mut self) {} }\n\
                   impl TierEngine { fn run(&mut self) { x.unwrap(); } }\n\
                   fn cost() { let mut sim = Simulation::new(); sim.run(); }\n";
        let (t, g) = graph(src);
        let sim_run = t.by_name["run"]
            .iter()
            .copied()
            .find(|&i| matches!(&t.fns[i].owner, Owner::Impl { type_name, .. } if type_name == "Simulation"))
            .unwrap();
        let callees: Vec<usize> = g.edges[id(&t, "cost")].iter().map(|e| e.callee).collect();
        assert!(callees.contains(&sim_run), "{callees:?}");
        let engine_run = t.by_name["run"]
            .iter()
            .copied()
            .find(|&i| matches!(&t.fns[i].owner, Owner::Impl { type_name, .. } if type_name == "TierEngine"))
            .unwrap();
        assert!(!callees.contains(&engine_run), "typed receiver must not fan out: {callees:?}");
    }

    #[test]
    fn struct_literal_binding_and_unknown_receiver() {
        let src = "impl Probe { fn arm(&self) {} }\n\
                   fn a(x: &Foo) { let p = Probe { n: 1 }; p.arm(); x.arm(); }\n";
        let (t, g) = graph(src);
        // Both resolve to Probe::arm — the literal binding precisely, the
        // unknown receiver via conservative fan-out. Edges are per call
        // site (distinct `tok`), so the same callee appears twice.
        let callees: Vec<usize> = g.edges[id(&t, "a")].iter().map(|e| e.callee).collect();
        assert_eq!(callees, vec![id(&t, "arm"), id(&t, "arm")]);
    }

    #[test]
    fn trait_path_call_fans_to_trait_impls_only() {
        let src = "trait T { fn go(&self); }\n\
                   impl T for A { fn go(&self) {} }\n\
                   impl B { fn go(&self) {} }\n\
                   fn f(x: &A) { T::go(x); }\n";
        let (t, g) = graph(src);
        let callees: Vec<usize> = g.edges[id(&t, "f")].iter().map(|e| e.callee).collect();
        // Trait decl + A's impl; NOT B's unrelated inherent `go`.
        let b_go = t.by_name["go"]
            .iter()
            .copied()
            .find(|&i| matches!(&t.fns[i].owner, Owner::Impl { type_name, .. } if type_name == "B"))
            .unwrap();
        assert!(!callees.contains(&b_go), "{callees:?}");
        assert_eq!(callees.len(), 2, "{callees:?}");
    }
}
