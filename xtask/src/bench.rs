//! `xtask bench-check`: structural validation of the `BENCH_*.json`
//! artifacts the bench suites write at the repository root.
//!
//! The bench writers emit JSON by hand (no serde in the workspace), so a
//! field rename or a `NaN`-shaped formatting bug silently breaks every
//! downstream consumer (CI trend jobs, EXPERIMENTS.md tables). This
//! command pins each document to the schema its `"bench"` discriminator
//! declares: required top-level fields, a non-empty `results` array, and
//! required typed fields on every result row. Unknown bench names are an
//! error — a new suite must register its schema here.
//!
//! The parser is a minimal recursive-descent JSON reader, sufficient for
//! the subset the bench writers produce (objects, arrays, strings without
//! exotic escapes, finite numbers, booleans, null).

use std::fmt::Write as _;

/// A parsed JSON value (subset: no unicode escapes beyond `\uXXXX`
/// pass-through, numbers as f64).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Field lookup on an object value.
    pub fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos).map(Json::Str),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                let esc = b.get(*pos + 1).copied();
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        // Pass-through: bench writers never emit \u, but
                        // keep the document parseable rather than erroring.
                        let _ = write!(out, "\\u");
                        *pos += 2;
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 2;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences are copied verbatim.
                let ch_len = utf8_len(c);
                let end = (*pos + ch_len).min(b.len());
                let s = std::str::from_utf8(&b[*pos..end]).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = end;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // `{`
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let v = value(b, pos)?;
        pairs.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // `[`
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

/// Expected type of a schema field.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Str,
    Num,
    Arr,
    /// Number or `null` (tier PSNR is null when no samples were taken).
    NumOrNull,
}

impl Kind {
    fn accepts(self, v: &Json) -> bool {
        match self {
            Kind::Str => matches!(v, Json::Str(_)),
            Kind::Num => matches!(v, Json::Num(_)),
            Kind::Arr => matches!(v, Json::Arr(_)),
            Kind::NumOrNull => matches!(v, Json::Num(_) | Json::Null),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kind::Str => "string",
            Kind::Num => "number",
            Kind::Arr => "array",
            Kind::NumOrNull => "number|null",
        }
    }
}

/// One bench family's schema: required top-level fields plus required
/// fields on every `results` row. `row_values` pins an enumerated row
/// field: every listed value must appear on some row (a latency table
/// that silently drops an op column passes field checks but not this).
struct Schema {
    bench: &'static str,
    top: &'static [(&'static str, Kind)],
    row: &'static [(&'static str, Kind)],
    row_values: &'static [(&'static str, &'static [&'static str])],
}

/// The registry. A new bench suite must add its schema here or
/// `bench-check` rejects its artifact.
const SCHEMAS: &[Schema] = &[
    Schema {
        bench: "encode-sessions",
        top: &[
            ("code", Kind::Str),
            ("object_bytes", Kind::Num),
            ("shard_len", Kind::Num),
        ],
        row: &[
            ("mode", Kind::Str),
            ("micros_per_object", Kind::Num),
            ("gib_per_s", Kind::Num),
        ],
        row_values: &[],
    },
    Schema {
        bench: "gf-kernel-ablation",
        top: &[("best_backend", Kind::Str)],
        row: &[
            ("kernel", Kind::Str),
            ("backend", Kind::Str),
            ("block_bytes", Kind::Num),
            ("mib_per_s", Kind::Num),
        ],
        row_values: &[],
    },
    Schema {
        bench: "repair-plan-executor",
        top: &[],
        row: &[
            ("code", Kind::Str),
            ("erased", Kind::Arr),
            ("mode", Kind::Str),
            ("shard_bytes", Kind::Num),
            ("micros_per_repair", Kind::Num),
            ("read_shards", Kind::Num),
            ("rebuilt_shards", Kind::Num),
        ],
        row_values: &[],
    },
    Schema {
        bench: "serve-load",
        top: &[
            ("seed", Kind::Num),
            ("clients", Kind::Num),
            ("elapsed_ms", Kind::Num),
            ("total_requests", Kind::Num),
            ("throughput_rps", Kind::Num),
            ("degraded_ratio", Kind::Num),
            ("integrity_failures", Kind::Num),
            ("mismatches", Kind::Num),
            ("errors", Kind::Num),
        ],
        row: &[
            ("op", Kind::Str),
            ("requests", Kind::Num),
            ("p50_ms", Kind::Num),
            ("p99_ms", Kind::Num),
            ("mean_ms", Kind::Num),
        ],
        row_values: &[("op", &["put", "get", "kill", "repair", "stat"])],
    },
    Schema {
        bench: "tier-lifecycle",
        top: &[],
        row: &[
            ("config", Kind::Str),
            ("hot", Kind::Str),
            ("cold", Kind::Str),
            ("micros_per_run", Kind::Num),
            ("demotions", Kind::Num),
            ("savings_pct", Kind::Num),
            ("conversion_write_kib", Kind::Num),
            ("read_p95_ms", Kind::Num),
            ("psnr_mean_db", Kind::NumOrNull),
            ("digest", Kind::Str),
        ],
        row_values: &[],
    },
    Schema {
        bench: "lint-stats",
        top: &[
            ("files", Kind::Num),
            ("fns", Kind::Num),
            ("call_edges", Kind::Num),
            ("lock_classes", Kind::Num),
            ("acquisition_sites", Kind::Num),
            ("order_edges", Kind::Num),
        ],
        row: &[("policy", Kind::Str), ("waivers", Kind::Num)],
        row_values: &[(
            "policy",
            &["transitive-panic", "transitive-lock-order", "transitive-lock-io"],
        )],
    },
    Schema {
        bench: "scrub",
        top: &[
            ("seed", Kind::Num),
            ("injected", Kind::Num),
            ("detected", Kind::Num),
            ("healed", Kind::Num),
            ("detection_latency_ms", Kind::Num),
            ("heal_latency_ms", Kind::Num),
            ("time_to_heal_ms", Kind::Num),
            ("scrub_mib_per_s", Kind::Num),
            ("cache_hit_rate", Kind::Num),
            ("sweep_mismatches", Kind::Num),
        ],
        row: &[("metric", Kind::Str), ("value", Kind::Num)],
        row_values: &[(
            "metric",
            &["scrub_passes", "bytes_scanned", "cache_hits", "sweep_reads"],
        )],
    },
];

/// Validates one document, returning `(bench name, row count)` or every
/// problem found.
pub fn check_doc(src: &str) -> Result<(String, usize), Vec<String>> {
    let doc = parse(src).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let Json::Obj(_) = &doc else {
        return Err(vec![format!("top level must be an object, got {}", doc.kind())]);
    };
    let bench = match doc.field("bench") {
        Some(Json::Str(s)) => s.clone(),
        Some(v) => return Err(vec![format!("`bench` must be a string, got {}", v.kind())]),
        None => return Err(vec!["missing `bench` discriminator field".to_string()]),
    };
    let Some(schema) = SCHEMAS.iter().find(|s| s.bench == bench) else {
        let known: Vec<&str> = SCHEMAS.iter().map(|s| s.bench).collect();
        return Err(vec![format!(
            "unknown bench {bench:?} — register its schema in xtask/src/bench.rs (known: {})",
            known.join(", ")
        )]);
    };
    let mut problems = Vec::new();
    for (name, kind) in schema.top {
        match doc.field(name) {
            Some(v) if kind.accepts(v) => {}
            Some(v) => problems.push(format!(
                "field `{name}` must be {}, got {}",
                kind.name(),
                v.kind()
            )),
            None => problems.push(format!("missing required field `{name}`")),
        }
    }
    let rows = match doc.field("results") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows.as_slice(),
        Some(Json::Arr(_)) => {
            problems.push("`results` must not be empty".to_string());
            &[]
        }
        Some(v) => {
            problems.push(format!("`results` must be an array, got {}", v.kind()));
            &[]
        }
        None => {
            problems.push("missing required field `results`".to_string());
            &[]
        }
    };
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Obj(_)) {
            problems.push(format!("results[{i}] must be an object, got {}", row.kind()));
            continue;
        }
        for (name, kind) in schema.row {
            match row.field(name) {
                Some(v) if kind.accepts(v) => {}
                Some(v) => problems.push(format!(
                    "results[{i}].{name} must be {}, got {}",
                    kind.name(),
                    v.kind()
                )),
                None => problems.push(format!("results[{i}] missing required field `{name}`")),
            }
        }
    }
    for (field, required) in schema.row_values {
        for want in *required {
            let present = rows.iter().any(|row| {
                matches!(row.field(field), Some(Json::Str(s)) if s == want)
            });
            if !present {
                problems.push(format!(
                    "no results row has {field} = {want:?} (required for bench {bench:?})"
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok((bench, rows.len()))
    } else {
        Err(problems)
    }
}

/// Runs `bench-check` over explicit paths, or over every `BENCH_*.json`
/// in the current directory when none are given. Prints one line per
/// file; returns `Err` with the count of failing files.
pub fn run(paths: &[String]) -> Result<Vec<String>, String> {
    let mut targets: Vec<String> = paths.to_vec();
    if targets.is_empty() {
        let entries = std::fs::read_dir(".").map_err(|e| format!("read_dir .: {e}"))?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                targets.push(name);
            }
        }
        targets.sort();
        if targets.is_empty() {
            return Err("no BENCH_*.json files found in the current directory".to_string());
        }
    }
    let mut lines = Vec::new();
    let mut failed = 0usize;
    for path in &targets {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                lines.push(format!("{path}: FAILED (read: {e})"));
                failed += 1;
                continue;
            }
        };
        match check_doc(&src) {
            Ok((bench, rows)) => lines.push(format!("{path}: ok ({bench}, {rows} rows)")),
            Err(problems) => {
                lines.push(format!("{path}: FAILED"));
                for p in problems {
                    lines.push(format!("  - {p}"));
                }
                failed += 1;
            }
        }
    }
    for l in &lines {
        println!("xtask bench-check: {l}");
    }
    if failed > 0 {
        Err(format!("{failed} of {} file(s) failed schema validation", targets.len()))
    } else {
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_shapes_writers_emit() {
        let v = parse(r#"{"a": [1, -2.5, 3e2], "b": "x\"y", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.field("b"), Some(&Json::Str("x\"y".to_string())));
        assert_eq!(
            v.field("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(300.0)]))
        );
        assert_eq!(v.field("c"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bare_nan() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": NaN}"#).is_err());
    }

    #[test]
    fn valid_encode_doc_passes() {
        let src = r#"{
            "bench": "encode-sessions", "code": "RS(5,3)",
            "object_bytes": 1024, "shard_len": 64,
            "results": [{"mode": "m", "micros_per_object": 1.5, "gib_per_s": 2.0}]
        }"#;
        assert_eq!(check_doc(src).unwrap(), ("encode-sessions".to_string(), 1));
    }

    #[test]
    fn missing_and_mistyped_fields_are_all_reported() {
        let src = r#"{
            "bench": "encode-sessions", "code": 7, "shard_len": 64,
            "results": [{"mode": "m", "gib_per_s": "fast"}]
        }"#;
        let problems = check_doc(src).unwrap_err();
        let text = problems.join("\n");
        assert!(text.contains("`code` must be string"), "{text}");
        assert!(text.contains("missing required field `object_bytes`"), "{text}");
        assert!(text.contains("results[0] missing required field `micros_per_object`"), "{text}");
        assert!(text.contains("results[0].gib_per_s must be number"), "{text}");
    }

    #[test]
    fn unknown_bench_is_an_error_naming_the_registry() {
        let problems = check_doc(r#"{"bench": "mystery", "results": [{}]}"#).unwrap_err();
        assert!(problems[0].contains("unknown bench"), "{problems:?}");
        assert!(problems[0].contains("tier-lifecycle"), "{problems:?}");
    }

    #[test]
    fn serve_load_doc_passes_and_catches_drift() {
        let src = r#"{
            "bench": "serve-load", "seed": 7, "clients": 4,
            "elapsed_ms": 141.4, "total_requests": 253, "throughput_rps": 1789.0,
            "degraded_ratio": 0.070833, "integrity_failures": 0,
            "mismatches": 0, "errors": 0,
            "results": [
                {"op": "put", "requests": 8, "p50_ms": 3.2, "p99_ms": 5.2, "mean_ms": 3.5},
                {"op": "get", "requests": 240, "p50_ms": 1.8, "p99_ms": 9.1, "mean_ms": 2.1},
                {"op": "kill", "requests": 2, "p50_ms": 0.7, "p99_ms": 2.4, "mean_ms": 1.6},
                {"op": "repair", "requests": 2, "p50_ms": 11.1, "p99_ms": 13.2, "mean_ms": 12.2},
                {"op": "stat", "requests": 8, "p50_ms": 0.3, "p99_ms": 0.4, "mean_ms": 0.3}
            ]
        }"#;
        assert_eq!(check_doc(src).unwrap(), ("serve-load".to_string(), 5));
        // A renamed latency field must fail loudly, not drift silently.
        let drifted = src.replace("p99_ms", "p99_millis");
        let problems = check_doc(&drifted).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("missing required field `p99_ms`")),
            "{problems:?}"
        );
        // Dropping an op row (the old lumped-admin shape) fails too.
        let lumped = src.replace("\"kill\"", "\"admin\"");
        let problems = check_doc(&lumped).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("no results row has op = \"kill\"")),
            "{problems:?}"
        );
    }

    #[test]
    fn scrub_doc_passes_and_requires_core_metrics() {
        let src = r#"{
            "bench": "scrub", "seed": 7, "injected": 4, "detected": 4, "healed": 4,
            "detection_latency_ms": 26.7, "heal_latency_ms": 26.7,
            "time_to_heal_ms": 25.4, "scrub_mib_per_s": 6.3,
            "cache_hit_rate": 0.786, "sweep_mismatches": 0,
            "results": [
                {"metric": "scrub_passes", "value": 3},
                {"metric": "bytes_scanned", "value": 139944},
                {"metric": "cache_hits", "value": 195},
                {"metric": "sweep_reads", "value": 8}
            ]
        }"#;
        assert_eq!(check_doc(src).unwrap(), ("scrub".to_string(), 4));
        let missing = src.replace("\"cache_hit_rate\": 0.786,", "");
        let problems = check_doc(&missing).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("missing required field `cache_hit_rate`")),
            "{problems:?}"
        );
        let dropped = src.replace("\"scrub_passes\"", "\"scrub_rounds\"");
        let problems = check_doc(&dropped).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("no results row has metric = \"scrub_passes\"")),
            "{problems:?}"
        );
    }

    #[test]
    fn lint_stats_doc_passes_and_catches_drift() {
        let src = r#"{
            "bench": "lint-stats", "files": 130, "fns": 2400, "call_edges": 5200,
            "lock_classes": 11, "acquisition_sites": 68, "order_edges": 9,
            "results": [
                {"policy": "transitive-panic", "waivers": 6},
                {"policy": "transitive-alloc", "waivers": 0},
                {"policy": "transitive-lock-order", "waivers": 1},
                {"policy": "transitive-lock-io", "waivers": 0}
            ]
        }"#;
        assert_eq!(check_doc(src).unwrap(), ("lint-stats".to_string(), 4));
        // Renaming a coverage counter must fail loudly.
        let drifted = src.replace("lock_classes", "lock_kinds");
        let problems = check_doc(&drifted).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("missing required field `lock_classes`")),
            "{problems:?}"
        );
        // Dropping a lock policy row (pass silently disabled) fails too.
        let dropped = src.replace("\"transitive-lock-order\"", "\"transitive-lock-orderx\"");
        let problems = check_doc(&dropped).unwrap_err();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("no results row has policy = \"transitive-lock-order\"")),
            "{problems:?}"
        );
    }

    #[test]
    fn empty_results_rejected() {
        let src = r#"{"bench": "repair-plan-executor", "results": []}"#;
        let problems = check_doc(src).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("must not be empty")), "{problems:?}");
    }

    #[test]
    fn tier_psnr_may_be_null_but_not_string() {
        let row = |psnr: &str| {
            format!(
                r#"{{"bench": "tier-lifecycle", "results": [{{
                    "config": "c", "hot": "h", "cold": "c", "micros_per_run": 1,
                    "demotions": 2, "savings_pct": 3.5, "conversion_write_kib": 4,
                    "read_p95_ms": 0.5, "psnr_mean_db": {psnr}, "digest": "d"}}]}}"#
            )
        };
        assert!(check_doc(&row("null")).is_ok());
        assert!(check_doc(&row("31.7")).is_ok());
        assert!(check_doc(&row("\"n/a\"")).is_err());
    }
}
